"""Run a whole fleet — supervisor + workers + gateway — as one command.

This is the ``python -m repro fleet`` core: spawn N advisory workers,
put the gateway in front of them, serve until SIGTERM/SIGINT, then
drain — gateway first (stop accepting, close client connections), then
SIGTERM fan-out to the workers so each checkpoints its live sessions to
the shared ``--checkpoint-dir`` — and print one greppable summary line::

    fleet: workers=3 workers_restarted=1 sessions_opened=12 \
sessions_closed=12 failovers_resumed=4 failovers_degraded=0 \
sessions_lost=0 sessions_evicted=7 tenants_rejected=0

CI's smoke job greps that line for ``sessions_lost=0`` and
``workers_restarted=1`` after SIGKILLing a worker mid-replay; the
tenancy smoke greps ``tenants_rejected`` and ``sessions_evicted``
(fleet-wide totals: worker evictions plus gateway + worker quota
rejections).
"""

from __future__ import annotations

import asyncio
import signal
from typing import Optional

from repro.cluster.gateway import AdvisoryGateway
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.worker import WorkerSupervisor
from repro.service import protocol


def _fleet_summary(
    gateway: AdvisoryGateway,
    supervisor: WorkerSupervisor,
    *,
    sessions_evicted: int = 0,
    worker_tenants_rejected: int = 0,
) -> str:
    stats = gateway.stats
    return (
        f"fleet: workers={len(supervisor.workers)} "
        f"workers_restarted={supervisor.workers_restarted} "
        f"sessions_opened={stats.sessions_opened} "
        f"sessions_closed={stats.sessions_closed} "
        f"failovers_resumed={stats.failovers_resumed} "
        f"failovers_degraded={stats.failovers_degraded} "
        f"sessions_lost={stats.sessions_lost} "
        f"sessions_evicted={sessions_evicted} "
        f"tenants_rejected={stats.tenants_rejected + worker_tenants_rejected}"
    )


async def serve_fleet(
    host: str = "127.0.0.1",
    port: int = 7199,
    *,
    workers: int = 2,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_s: Optional[float] = None,
    store: Optional[str] = None,
    model: Optional[str] = None,
    tenant_config: Optional[str] = None,
    memory_budget_mb: Optional[int] = None,
    max_sessions: int = 1024,
    vnodes: int = DEFAULT_VNODES,
    probe_interval_s: float = 1.0,
    ready_message: bool = True,
) -> None:
    """Run gateway + supervised workers until SIGTERM/SIGINT/cancel."""

    def _say(message: str) -> None:
        if ready_message:
            print(message, flush=True)

    quotas = None
    if tenant_config is not None:
        # Parse once up front: the gateway admits against the same config
        # the workers load from the file path.
        from repro.tenancy.config import load_tenancy_config

        quotas = load_tenancy_config(tenant_config)
    supervisor = WorkerSupervisor(
        workers,
        host=host,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every_s=checkpoint_every_s,
        store=store,
        model=model,
        tenant_config=tenant_config,
        memory_budget_mb=memory_budget_mb,
        max_sessions=max_sessions,
        probe_interval_s=probe_interval_s,
        echo=_say if ready_message else None,
    )
    await supervisor.start()
    gateway = AdvisoryGateway(
        supervisor,
        vnodes=vnodes,
        on_route=lambda sid, wid: _say(f"fleet: session {sid} on {wid}"),
        tenant_config=quotas,
    )
    try:
        await gateway.start(host, port)
        _say(
            f"repro.gateway listening on {host}:{gateway.port} "
            f"(protocol v{protocol.PROTOCOL_VERSION}, workers={workers})"
        )
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop_requested.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
    finally:
        # Collect worker counters (evictions, worker-side rejections) for
        # the summary while the workers are still up.
        sessions_evicted = 0
        worker_tenants_rejected = 0
        try:
            totals, _ = await gateway.fleet_metrics()
            sessions_evicted = totals.sessions_evicted
            worker_tenants_rejected = totals.tenants_rejected
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        await gateway.aclose()
        await supervisor.stop()
        _say(_fleet_summary(
            gateway, supervisor,
            sessions_evicted=sessions_evicted,
            worker_tenants_rejected=worker_tenants_rejected,
        ))
