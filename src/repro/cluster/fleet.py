"""Run a whole fleet — supervisor + workers + gateway — as one command.

This is the ``python -m repro fleet`` core: spawn N advisory workers,
put the gateway in front of them, serve until SIGTERM/SIGINT, then
drain — gateway first (stop accepting, close client connections), then
SIGTERM fan-out to the workers so each checkpoints its live sessions to
the shared ``--checkpoint-dir`` — and print one greppable summary line::

    fleet: workers=3 workers_restarted=1 sessions_opened=12 \
sessions_closed=12 failovers_resumed=4 failovers_degraded=0 sessions_lost=0

CI's smoke job greps that line for ``sessions_lost=0`` and
``workers_restarted=1`` after SIGKILLing a worker mid-replay.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Optional

from repro.cluster.gateway import AdvisoryGateway
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.worker import WorkerSupervisor
from repro.service import protocol


def _fleet_summary(
    gateway: AdvisoryGateway, supervisor: WorkerSupervisor
) -> str:
    return (
        f"fleet: workers={len(supervisor.workers)} "
        f"workers_restarted={supervisor.workers_restarted} "
        f"{gateway.summary()}"
    )


async def serve_fleet(
    host: str = "127.0.0.1",
    port: int = 7199,
    *,
    workers: int = 2,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_s: Optional[float] = None,
    store: Optional[str] = None,
    model: Optional[str] = None,
    max_sessions: int = 1024,
    vnodes: int = DEFAULT_VNODES,
    probe_interval_s: float = 1.0,
    ready_message: bool = True,
) -> None:
    """Run gateway + supervised workers until SIGTERM/SIGINT/cancel."""

    def _say(message: str) -> None:
        if ready_message:
            print(message, flush=True)

    supervisor = WorkerSupervisor(
        workers,
        host=host,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every_s=checkpoint_every_s,
        store=store,
        model=model,
        max_sessions=max_sessions,
        probe_interval_s=probe_interval_s,
        echo=_say if ready_message else None,
    )
    await supervisor.start()
    gateway = AdvisoryGateway(
        supervisor,
        vnodes=vnodes,
        on_route=lambda sid, wid: _say(f"fleet: session {sid} on {wid}"),
    )
    try:
        await gateway.start(host, port)
        _say(
            f"repro.gateway listening on {host}:{gateway.port} "
            f"(protocol v{protocol.PROTOCOL_VERSION}, workers={workers})"
        )
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop_requested.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
    finally:
        await gateway.aclose()
        await supervisor.stop()
        _say(_fleet_summary(gateway, supervisor))
