"""Run a whole fleet — supervisor + workers + gateway — as one unit.

Two entry points share the same wiring:

* :func:`start_fleet` — the programmatic embedding: start N supervised
  advisory workers behind a gateway and hand back a :class:`Fleet`
  handle (``port``, ``metrics()``, ``aclose()``).  The campaign engine
  (:mod:`repro.campaign`) drives real fleets through this.
* :func:`serve_fleet` — the ``python -m repro fleet`` core: a started
  fleet plus signal handling.  Serve until SIGTERM/SIGINT, then drain —
  gateway first (stop accepting, close client connections), then
  SIGTERM fan-out to the workers so each checkpoints its live sessions
  to the shared ``--checkpoint-dir`` — and print one greppable summary
  line::

    fleet: workers=3 workers_restarted=1 sessions_opened=12 \
sessions_closed=12 failovers_resumed=4 failovers_degraded=0 \
sessions_lost=0 sessions_evicted=7 tenants_rejected=0

CI's smoke job greps that line for ``sessions_lost=0`` and
``workers_restarted=1`` after SIGKILLing a worker mid-replay; the
tenancy smoke greps ``tenants_rejected`` and ``sessions_evicted``
(fleet-wide totals: worker evictions plus gateway + worker quota
rejections).
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from typing import Any, Dict, Optional, Tuple

from repro.cluster.gateway import AdvisoryGateway
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.worker import WorkerSupervisor
from repro.service import protocol
from repro.service.metrics import ServiceMetrics
from repro.service.overload import OverloadPolicy


class Fleet:
    """A started fleet: gateway in front, supervised workers behind.

    ::

        fleet = await start_fleet(workers=2, checkpoint_dir="ckpt")
        try:
            ...  # clients connect to fleet.port
            totals, per_worker = await fleet.metrics()
        finally:
            await fleet.aclose()

    Also an async context manager.  :meth:`aclose` collects the worker
    counters *before* tearing anything down, so :attr:`sessions_evicted`
    and :attr:`worker_tenants_rejected` stay readable afterwards (the
    shutdown summary line needs them).
    """

    def __init__(
        self, gateway: AdvisoryGateway, supervisor: WorkerSupervisor
    ) -> None:
        self.gateway = gateway
        self.supervisor = supervisor
        self.started_at = time.monotonic()
        self.sessions_evicted = 0
        self.worker_tenants_rejected = 0
        self.worker_overload_rejections = 0

    @property
    def port(self) -> int:
        """The gateway port clients connect to."""
        return self.gateway.port

    @property
    def sessions_lost(self) -> int:
        return self.gateway.stats.sessions_lost

    async def metrics(self) -> Tuple[ServiceMetrics, Dict[str, Any]]:
        """Merged worker metrics: ``(fleet totals, per-worker dicts)``."""
        return await self.gateway.fleet_metrics()

    def summary(self) -> str:
        """The greppable one-line shutdown summary (see module docstring)."""
        stats = self.gateway.stats
        rejected = stats.tenants_rejected + self.worker_tenants_rejected
        shed = stats.overload_rejections + self.worker_overload_rejections
        return (
            f"fleet: workers={len(self.supervisor.workers)} "
            f"workers_restarted={self.supervisor.workers_restarted} "
            f"sessions_opened={stats.sessions_opened} "
            f"sessions_closed={stats.sessions_closed} "
            f"failovers_resumed={stats.failovers_resumed} "
            f"failovers_degraded={stats.failovers_degraded} "
            f"sessions_lost={stats.sessions_lost} "
            f"sessions_evicted={self.sessions_evicted} "
            f"tenants_rejected={rejected} "
            f"overload_rejections={shed} "
            f"breakers_opened={stats.breakers_opened} "
            f"journal_compactions={stats.journal_compactions} "
            f"uptime_s={time.monotonic() - self.started_at:.3f} "
            f"proto_version={protocol.PROTOCOL_VERSION} "
            f"pid={os.getpid()}"
        )

    async def aclose(self) -> None:
        # Collect worker counters (evictions, worker-side rejections) for
        # the summary while the workers are still up.
        try:
            totals, _ = await self.gateway.fleet_metrics()
            self.sessions_evicted = totals.sessions_evicted
            self.worker_tenants_rejected = totals.tenants_rejected
            self.worker_overload_rejections = totals.overload_rejections
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        await self.gateway.aclose()
        await self.supervisor.stop()

    async def __aenter__(self) -> "Fleet":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()


async def start_fleet(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 2,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_s: Optional[float] = None,
    store: Optional[str] = None,
    model: Optional[str] = None,
    tenant_config: Optional[str] = None,
    memory_budget_mb: Optional[int] = None,
    max_sessions: int = 1024,
    max_inflight: Optional[int] = None,
    brownout: bool = False,
    vnodes: int = DEFAULT_VNODES,
    probe_interval_s: float = 1.0,
    trace_dir: Optional[str] = None,
    trace_sample: float = 1.0,
    trace_seed: int = 0,
    echo=None,
) -> Fleet:
    """Spawn the workers, start the gateway, return a live :class:`Fleet`.

    ``port=0`` binds the gateway to an ephemeral port (read it back from
    ``fleet.port``).  ``echo`` is an optional ``callable(str)`` receiving
    the same progress lines ``repro fleet`` prints.  ``trace_dir``
    switches on distributed tracing: the gateway head-samples
    ``trace_sample`` of sessions (deterministically, from
    ``trace_seed``) and every component appends its spans to
    ``<trace_dir>/<component>.ndjson`` — workers included, via their
    serve argv.
    """
    quotas = None
    if tenant_config is not None:
        # Parse once up front: the gateway admits against the same config
        # the workers load from the file path.
        from repro.tenancy.config import load_tenancy_config

        quotas = load_tenancy_config(tenant_config)
    supervisor = WorkerSupervisor(
        workers,
        host=host,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every_s=checkpoint_every_s,
        store=store,
        model=model,
        tenant_config=tenant_config,
        memory_budget_mb=memory_budget_mb,
        max_sessions=max_sessions,
        max_inflight=max_inflight,
        brownout=brownout,
        probe_interval_s=probe_interval_s,
        trace_dir=trace_dir,
        trace_sample=trace_sample if trace_dir is not None else None,
        trace_seed=trace_seed if trace_dir is not None else None,
        echo=echo,
    )
    tracer = None
    if trace_dir is not None:
        from repro.obs.trace import Tracer

        tracer = Tracer(
            "gateway", trace_dir=trace_dir,
            sample=trace_sample, seed=trace_seed,
        )
    await supervisor.start()
    gateway = AdvisoryGateway(
        supervisor,
        vnodes=vnodes,
        on_route=(
            None if echo is None
            else (lambda sid, wid: echo(f"fleet: session {sid} on {wid}"))
        ),
        tenant_config=quotas,
        # The gateway enforces the same admission watermark fleet-front,
        # so a flood is refused before it costs a worker round trip.
        overload=(
            OverloadPolicy(max_inflight=max_inflight)
            if max_inflight is not None else None
        ),
        checkpoint_dir=checkpoint_dir,
        tracer=tracer,
    )
    try:
        await gateway.start(host, port)
    except BaseException:
        await gateway.aclose()
        await supervisor.stop()
        raise
    return Fleet(gateway, supervisor)


async def serve_fleet(
    host: str = "127.0.0.1",
    port: int = 7199,
    *,
    workers: int = 2,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_s: Optional[float] = None,
    store: Optional[str] = None,
    model: Optional[str] = None,
    tenant_config: Optional[str] = None,
    memory_budget_mb: Optional[int] = None,
    max_sessions: int = 1024,
    max_inflight: Optional[int] = None,
    brownout: bool = False,
    vnodes: int = DEFAULT_VNODES,
    probe_interval_s: float = 1.0,
    trace_dir: Optional[str] = None,
    trace_sample: float = 1.0,
    trace_seed: int = 0,
    ready_message: bool = True,
) -> None:
    """Run gateway + supervised workers until SIGTERM/SIGINT/cancel."""

    def _say(message: str) -> None:
        if ready_message:
            print(message, flush=True)

    fleet = await start_fleet(
        host, port,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every_s=checkpoint_every_s,
        store=store,
        model=model,
        tenant_config=tenant_config,
        memory_budget_mb=memory_budget_mb,
        max_sessions=max_sessions,
        max_inflight=max_inflight,
        brownout=brownout,
        vnodes=vnodes,
        probe_interval_s=probe_interval_s,
        trace_dir=trace_dir,
        trace_sample=trace_sample,
        trace_seed=trace_seed,
        echo=_say if ready_message else None,
    )
    try:
        _say(
            f"repro.gateway listening on {host}:{fleet.port} "
            f"(protocol v{protocol.PROTOCOL_VERSION}, workers={workers})"
        )
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop_requested.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
    finally:
        await fleet.aclose()
        _say(fleet.summary())
