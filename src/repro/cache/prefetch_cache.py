"""The prefetch cache: prefetched-but-not-yet-referenced blocks (Section 3).

Each resident block carries the metadata the cost model needs:

* ``probability`` -- ``p_b`` from the prefetch tree when the prefetch was
  issued (or refreshed);
* ``depth`` -- the distance ``d_b`` (in access periods) at which the block
  was expected to be used;
* ``issue_period`` -- the access-period index at which the prefetch was
  issued, so the *remaining* distance can be recomputed as periods elapse;
* ``arrival_time`` -- simulated wall-clock time at which the disk delivers
  the block, used for stall accounting.

Eviction picks the entry with the lowest Eq. 11 cost.  Blocks that were
expected by now but have not been referenced are probable mispredictions;
their effective probability is decayed geometrically per overdue period so
they become the cheapest victims, which is how the scheme sheds bad guesses
(the paper's "strategies to reduce the number of blocks prefetched by
eliminating mispredicted blocks", Section 9.2.2).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.core import costbenefit
from repro.params import SystemParams

Block = Hashable

#: Per-overdue-period decay of a resident block's effective probability.
OVERDUE_DECAY = 0.5


@dataclass
class PrefetchEntry:
    """Metadata for one resident prefetched block."""

    block: Block
    probability: float
    depth: int
    issue_period: int
    arrival_time: float
    tag: str = "tree"
    """Origin of the prefetch ("tree", "nl", ...); lets combined policies
    cap one source's share of the pool (next-limit's 10% rule)."""

    def periods_elapsed(self, current_period: int) -> int:
        return max(0, current_period - self.issue_period)

    def remaining_depth(self, current_period: int) -> int:
        """Expected periods until use; 0 once the block is due or overdue."""
        return max(0, self.depth - self.periods_elapsed(current_period))

    def effective_probability(self, current_period: int) -> float:
        """``p_b`` decayed once the expected access period has passed."""
        overdue = self.periods_elapsed(current_period) - self.depth
        if overdue <= 0:
            return self.probability
        return self.probability * (OVERDUE_DECAY ** overdue)


class PrefetchCache:
    """Holds prefetched blocks until referenced, with cost-based eviction.

    ``capacity`` bounds the number of resident entries (the next-limit policy
    caps its prefetch partition at 10% of the combined cache; the tree policy
    shares the whole pool and passes the pool size).
    """

    def __init__(
        self,
        params: SystemParams,
        capacity: int,
        *,
        refetch_distance: int | None = None,
    ) -> None:
        """``refetch_distance`` fixes Eq. 11's ``x`` instead of deriving it
        from the prefetch horizon (DESIGN.md Section 5's ablation knob)."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if refetch_distance is not None and refetch_distance < 0:
            raise ValueError(
                f"refetch_distance must be >= 0, got {refetch_distance!r}"
            )
        self.params = params
        self.refetch_distance = refetch_distance
        self._capacity = capacity
        self._entries: Dict[Block, PrefetchEntry] = {}
        self._tag_counts: Dict[str, int] = {}
        self.hits = 0
        self.inserted = 0
        self.evicted_unreferenced = 0
        # Cheapest-entries cache.  Within one access period (and fixed s) an
        # entry's Eq. 11 cost is deterministic, so a single scan per period
        # suffices; insert/refresh/remove keep the sorted list exact.  Key:
        # (cost, block); invalidated when (period, s) moves on.
        self._cheap: List[Tuple[float, Block]] = []
        self._cheap_key: Optional[Tuple[int, float]] = None
        self._cheap_complete = False

    # ------------------------------------------------------------- queries

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block: Block) -> bool:
        return block in self._entries

    def __iter__(self) -> Iterator[PrefetchEntry]:
        return iter(self._entries.values())

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self._capacity

    def get(self, block: Block) -> Optional[PrefetchEntry]:
        return self._entries.get(block)

    def tag_count(self, tag: str) -> int:
        """Number of resident entries issued under ``tag``."""
        return self._tag_counts.get(tag, 0)

    def eviction_cost(
        self, entry: PrefetchEntry, current_period: int, s: float
    ) -> float:
        """Eq. 11 cost of ejecting ``entry`` right now.

        ``d_b`` is the remaining expected distance; due/overdue blocks use a
        distance of 1 with decayed probability, making mispredictions cheap.
        """
        depth = max(1, entry.remaining_depth(current_period))
        p = entry.effective_probability(current_period)
        refetch = self.refetch_distance
        if refetch is not None:
            refetch = min(refetch, depth - 1)
        return costbenefit.cost_prefetch_eviction(
            self.params, p, depth, s, refetch_distance=refetch
        )

    def _cost_fast(self, entry: PrefetchEntry, current_period: int,
                   horizon: int, compute: float) -> float:
        """Eq. 11 cost, inlined (equivalent to :meth:`eviction_cost`)."""
        params = self.params
        elapsed = current_period - entry.issue_period
        if elapsed < 0:
            elapsed = 0
        remaining = entry.depth - elapsed
        if remaining >= 1:
            p = entry.probability
            depth = remaining
        else:
            p = entry.probability * (OVERDUE_DECAY ** (elapsed - entry.depth))
            depth = 1
        x = depth - 1
        if x > horizon:
            x = horizon
        # bufferage = depth - x >= 1 by construction
        if x == 0:
            stall = params.t_disk
        else:
            stall = params.t_disk / x - compute
            if stall < 0.0:
                stall = 0.0
        return p * (params.t_driver + stall) / (depth - x)

    def _cost_context(self, s: float) -> Tuple[int, float]:
        if self.refetch_distance is None:
            horizon = costbenefit.prefetch_horizon(self.params, s)
        else:
            horizon = self.refetch_distance
        compute = self.params.t_cpu + self.params.t_hit + s * self.params.t_driver
        return horizon, compute

    #: Cheap-list length per rebuild; rescan when a period evicts more.
    _CHEAP_WIDTH = 32

    def _rebuild_cheap(self, current_period: int, s: float) -> None:
        horizon, compute = self._cost_context(s)
        costs = [
            (self._cost_fast(e, current_period, horizon, compute), b)
            for b, e in self._entries.items()
        ]
        complete = len(costs) <= self._CHEAP_WIDTH
        if not complete:
            costs.sort()
            del costs[self._CHEAP_WIDTH :]
        else:
            costs.sort()
        self._cheap = costs
        self._cheap_key = (current_period, s)
        self._cheap_complete = complete

    def _cheap_invalidate(self) -> None:
        self._cheap_key = None

    def _cheap_remove(self, block: Block) -> None:
        if self._cheap_key is None:
            return
        for i, (_, b) in enumerate(self._cheap):
            if b == block:
                del self._cheap[i]
                return
        # Block was beyond the cached width: the list is still the true
        # k-cheapest, nothing to do.

    def _cheap_add(self, entry: PrefetchEntry) -> None:
        if self._cheap_key is None:
            return
        period, s = self._cheap_key
        horizon, compute = self._cost_context(s)
        cost = self._cost_fast(entry, period, horizon, compute)
        if self._cheap_complete or (
            self._cheap and cost <= self._cheap[-1][0]
        ) or len(self._cheap) < self._CHEAP_WIDTH:
            bisect.insort(self._cheap, (cost, entry.block))
            if not self._cheap_complete and len(self._cheap) > self._CHEAP_WIDTH:
                del self._cheap[self._CHEAP_WIDTH :]

    def min_cost_entry(
        self, current_period: int, s: float
    ) -> Optional[Tuple[PrefetchEntry, float]]:
        """The cheapest entry to evict and its cost, or ``None`` if empty.

        Exact, but amortised: within one access period (fixed ``s``) the
        Eq. 11 cost of each entry is deterministic, so the cache scans the
        population once per period, keeps the k-cheapest sorted, and
        maintains that list incrementally across inserts/removals/refreshes.
        A period that evicts more than k entries triggers a rescan.
        Equivalence with the per-entry :meth:`eviction_cost` is pinned by
        the unit tests.
        """
        if not self._entries:
            return None
        if self._cheap_key != (current_period, s) or (
            not self._cheap and not self._cheap_complete
        ):
            self._rebuild_cheap(current_period, s)
        if not self._cheap:
            # Complete-but-empty can only mean no entries; guarded above.
            self._rebuild_cheap(current_period, s)
        cost, block = self._cheap[0]
        return self._entries[block], cost

    # ----------------------------------------------------------- mutations

    def insert(self, entry: PrefetchEntry) -> None:
        """Add a prefetched block.  The caller must have reclaimed space.

        Raises if the cache is full or the block already resident; the buffer
        reclaim protocol (Figure 2) is the combined cache's responsibility.
        """
        if len(self._entries) >= self._capacity:
            raise RuntimeError("prefetch cache full; reclaim a buffer first")
        if entry.block in self._entries:
            raise ValueError(f"block {entry.block!r} already in prefetch cache")
        self._entries[entry.block] = entry
        self._tag_counts[entry.tag] = self._tag_counts.get(entry.tag, 0) + 1
        self.inserted += 1
        self._cheap_add(entry)

    def refresh(
        self, block: Block, probability: float, depth: int, current_period: int
    ) -> bool:
        """Update a resident block re-predicted by the tree this period.

        Keeps the metadata (and hence the Eq. 11 cost) in step with the
        tree's current view; returns whether the block was resident.
        """
        entry = self._entries.get(block)
        if entry is None:
            return False
        self._cheap_remove(block)
        entry.probability = probability
        entry.depth = depth
        entry.issue_period = current_period
        self._cheap_add(entry)
        return True

    def take(self, block: Block) -> PrefetchEntry:
        """Remove and return a referenced block (moves to the demand cache)."""
        entry = self._entries.pop(block)
        self._tag_counts[entry.tag] -= 1
        self.hits += 1
        self._cheap_remove(block)
        return entry

    def evict(self, block: Block) -> PrefetchEntry:
        """Remove an unreferenced block to reclaim its buffer."""
        entry = self._entries.pop(block)
        self._tag_counts[entry.tag] -= 1
        self.evicted_unreferenced += 1
        self._cheap_remove(block)
        return entry

    def resize(self, capacity: int) -> None:
        """Change the partition bound; never evicts (caller reclaims)."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self._capacity = capacity
