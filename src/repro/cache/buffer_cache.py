"""The combined demand + prefetch buffer cache (Figure 2).

A fixed pool of ``total_buffers`` is shared by two partitions:

* the **demand cache** -- LRU over previously referenced blocks;
* the **prefetch cache** -- predicted blocks awaiting their first reference.

The partition boundary is not fixed: whenever a new fetch (demand or
prefetch) needs a buffer and the pool is full, a buffer is *reclaimed* from
whichever partition currently holds the least valuable block -- the cheaper
of Eq. 11 (prefetch-cache ejection) and Eq. 13 (demand-cache LRU ejection).
A referenced prefetched block moves to the demand cache without changing
pool occupancy (transition iii in Figure 2).

The demand-side cost needs the marginal LRU hit rate ``H(n) - H(n-1)``;
every application reference is fed to a stack-distance profiler and the
marginal rate is read at the demand partition's current size.

An optional hard cap on the prefetch partition implements the next-limit
policy's "at most 10% of the cache for prefetched blocks" rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from repro.cache.ghost import StackDistanceProfiler
from repro.cache.lru import LRUCache
from repro.cache.prefetch_cache import PrefetchCache, PrefetchEntry
from repro.core import costbenefit
from repro.params import SystemParams

Block = Hashable


class Location(enum.Enum):
    """Where a referenced block was found."""

    MISS = "miss"
    DEMAND = "demand"
    PREFETCH = "prefetch"


class VictimKind(enum.Enum):
    DEMAND = "demand"
    PREFETCH = "prefetch"


@dataclass(frozen=True)
class ReferenceResult:
    """Outcome of one application block reference."""

    location: Location
    entry: Optional[PrefetchEntry] = None
    """The prefetch-cache entry the block was found in, when applicable."""


class BufferCache:
    """Fixed-size buffer pool with the Figure 2 reclaim protocol."""

    def __init__(
        self,
        params: SystemParams,
        total_buffers: int,
        *,
        prefetch_capacity: Optional[int] = None,
        profiler_depth: Optional[int] = None,
        profiler_decay: float = 0.9995,
        marginal_band: int = 8,
        refetch_distance: Optional[int] = None,
    ) -> None:
        if total_buffers < 1:
            raise ValueError(f"total_buffers must be >= 1, got {total_buffers!r}")
        if prefetch_capacity is None:
            prefetch_capacity = total_buffers
        if not (0 <= prefetch_capacity <= total_buffers):
            raise ValueError(
                f"prefetch_capacity must be in [0, {total_buffers}], "
                f"got {prefetch_capacity!r}"
            )
        self.params = params
        self.total_buffers = total_buffers
        self.demand = LRUCache(capacity=total_buffers)
        self.prefetch = PrefetchCache(
            params, capacity=prefetch_capacity, refetch_distance=refetch_distance
        )
        depth = profiler_depth if profiler_depth is not None else 2 * total_buffers
        depth = max(depth, total_buffers + 1)
        self.profiler = StackDistanceProfiler(max_depth=depth, decay=profiler_decay)
        self._marginal_band = marginal_band
        self.forced_prefetch_evictions = 0

    # ------------------------------------------------------------- queries

    @property
    def occupancy(self) -> int:
        return len(self.demand) + len(self.prefetch)

    @property
    def free_buffers(self) -> int:
        return self.total_buffers - self.occupancy

    def location_of(self, block: Block) -> Location:
        """Where ``block`` currently resides, without touching any state."""
        if block in self.demand:
            return Location.DEMAND
        if block in self.prefetch:
            return Location.PREFETCH
        return Location.MISS

    def demand_eviction_cost(self) -> float:
        """Eq. 13 at the demand partition's current size.

        Infinite when the partition is empty (nothing to evict there).
        """
        n = len(self.demand)
        if n == 0:
            return costbenefit.INFINITE_COST
        n = min(n, self.profiler.max_depth)
        marginal = self.profiler.recent_marginal_rate(n, width=self._marginal_band)
        return costbenefit.cost_demand_eviction(self.params, marginal)

    def cheapest_victim(
        self, current_period: int, s: float
    ) -> Optional[Tuple[VictimKind, Block, float]]:
        """The globally cheapest buffer to reclaim, per Eqs. 11 and 13.

        Ties (within epsilon) go to the prefetch cache: a prefetched block
        whose Eq. 11 cost has collapsed is a misprediction, while the demand
        LRU block retains whatever recency standing the profiler has not yet
        resolved.
        """
        best: Optional[Tuple[VictimKind, Block, float]] = None
        pf = self.prefetch.min_cost_entry(current_period, s)
        if pf is not None:
            entry, cost = pf
            best = (VictimKind.PREFETCH, entry.block, cost)
        dc = self.demand_eviction_cost()
        if dc != costbenefit.INFINITE_COST and (
            best is None or dc < best[2] - 1e-9
        ):
            lru = self.demand.lru_block()
            assert lru is not None
            best = (VictimKind.DEMAND, lru, dc)
        return best

    # ----------------------------------------------------------- reference

    def reference(self, block: Block, current_period: int) -> ReferenceResult:
        """Apply one application reference.

        Feeds the stack-distance profiler, performs the prefetch-to-demand
        move on a prefetch hit, and refreshes demand-cache recency on a
        demand hit.  On a miss the caller is responsible for fetching the
        block and calling :meth:`insert_demand` after reclaiming a buffer.
        """
        self.profiler.record(block)
        if self.demand.access(block):
            return ReferenceResult(Location.DEMAND)
        if block in self.prefetch:
            entry = self.prefetch.take(block)
            # Transition (iii): occupancy is unchanged by the move.
            evicted = self.demand.insert(block)
            assert evicted is None, "pool accounting must prevent LRU overflow"
            return ReferenceResult(Location.PREFETCH, entry=entry)
        return ReferenceResult(Location.MISS)

    # ------------------------------------------------------------- reclaim

    def _evict(self, victim: Tuple[VictimKind, Block, float]) -> None:
        kind, block, _ = victim
        if kind is VictimKind.DEMAND:
            removed = self.demand.discard(block)
            assert removed
            self.demand.evictions += 1
        else:
            self.prefetch.evict(block)

    def reclaim_for_demand(self, current_period: int, s: float) -> None:
        """Guarantee a free buffer for a demand fetch (Figure 2, path ii).

        A demand fetch cannot be refused, so if every candidate is
        non-evictable by cost (possible only when the demand partition is
        empty and all prefetched blocks are imminently due), the stalest
        prefetched block is evicted anyway.
        """
        if self.free_buffers > 0:
            return
        victim = self.cheapest_victim(current_period, s)
        if victim is not None and victim[2] != costbenefit.INFINITE_COST:
            self._evict(victim)
            return
        # Forced fallback: evict the prefetched block with the lowest
        # effective probability.
        entries = list(self.prefetch)
        if not entries:
            # Demand partition must be non-empty; evict its LRU block.
            assert len(self.demand) > 0
            self.demand.evict_lru()
            return
        stalest = min(
            entries, key=lambda e: (e.effective_probability(current_period), e.issue_period)
        )
        self.prefetch.evict(stalest.block)
        self.forced_prefetch_evictions += 1

    def try_reclaim_for_prefetch(
        self, current_period: int, s: float, max_cost: float
    ) -> Optional[float]:
        """Reclaim a buffer for a prefetch if the cheapest victim costs
        at most ``max_cost`` (the candidate's net benefit).

        Returns the reclaim cost actually paid, or ``None`` if the prefetch
        should be abandoned (no affordable victim, or the prefetch partition
        is at its hard cap and holds nothing cheap enough).
        """
        if self.prefetch.is_full:
            # Hard cap: must displace within the prefetch partition.
            pf = self.prefetch.min_cost_entry(current_period, s)
            if pf is None:
                return None
            entry, cost = pf
            if cost > max_cost:
                return None
            self.prefetch.evict(entry.block)
            return cost
        if self.free_buffers > 0:
            return 0.0
        victim = self.cheapest_victim(current_period, s)
        if victim is None or victim[2] > max_cost:
            return None
        self._evict(victim)
        return victim[2]

    # -------------------------------------------------------------- insert

    def insert_demand(self, block: Block) -> None:
        """Install a demand-fetched block; a buffer must be free."""
        if self.free_buffers <= 0:
            raise RuntimeError("no free buffer; call reclaim_for_demand first")
        evicted = self.demand.insert(block)
        assert evicted is None

    def insert_prefetch(self, entry: PrefetchEntry) -> None:
        """Install a prefetched block; a buffer must be free."""
        if self.free_buffers <= 0:
            raise RuntimeError("no free buffer; reclaim before prefetching")
        self.prefetch.insert(entry)
