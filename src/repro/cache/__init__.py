"""Buffer-cache substrate: LRU demand cache, prefetch cache, combined pool."""

from repro.cache.buffer_cache import (
    BufferCache,
    Location,
    ReferenceResult,
    VictimKind,
)
from repro.cache.ghost import StackDistanceProfiler
from repro.cache.lru import LRUCache
from repro.cache.prefetch_cache import OVERDUE_DECAY, PrefetchCache, PrefetchEntry

__all__ = [
    "BufferCache",
    "LRUCache",
    "Location",
    "OVERDUE_DECAY",
    "PrefetchCache",
    "PrefetchEntry",
    "ReferenceResult",
    "StackDistanceProfiler",
    "VictimKind",
]
