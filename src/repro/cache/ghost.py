"""LRU stack-distance profiling for the marginal hit rate ``H(n) - H(n-1)``.

Eq. 13 prices a demand-cache buffer by the hit rate lost if the cache shrank
by one block: ``C_dc(n) = (H(n) - H(n-1)) * (T_driver + T_disk)``.
``H(n) - H(n-1)`` equals the rate of hits landing exactly at LRU stack
position ``n`` (Section 6.2), so we maintain an extended LRU stack (the
cache's blocks plus a ghost tail of recently evicted ones) and record the
stack distance of every reference.

The stack distance of a hit is computed as a rank query over a Fenwick
(binary indexed) tree of "active" position slots: every touch assigns the
block a fresh, monotonically increasing position; the distance is the number
of active positions younger than the block's.  This keeps profiling at
O(log max_depth) per reference - the naive walk from the MRU end is O(n) and
dominates whole-trace simulations.

Two estimates are exposed:

* an exact lifetime histogram (used by tests and offline analysis), and
* an exponentially decayed rate (used online, so the Eq. 13 cost adapts as
  the workload's locality drifts).  Decay is applied lazily through a global
  scale factor, renormalised before it can overflow.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional

Block = Hashable

_RENORM_THRESHOLD = 1e100


class _Fenwick:
    """Fixed-size Fenwick tree over ints with prefix-sum queries."""

    __slots__ = ("size", "_tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at 0-based ``index``."""
        i = index + 1
        tree = self._tree
        while i <= self.size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at 0-based positions [0, index]."""
        i = index + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def total(self) -> int:
        return self.prefix_sum(self.size - 1) if self.size else 0


class StackDistanceProfiler:
    """Records LRU stack distances of a reference stream.

    Parameters
    ----------
    max_depth:
        Stack positions are tracked up to this depth; deeper (or first-time)
        references count as "infinite" distance.  Set it a few times the
        cache size so the marginal rate at ``n = capacity`` is resolvable.
    decay:
        Per-reference decay of the recent-rate estimate; with decay ``g`` the
        estimate is an EWMA with time constant ``1 / (1 - g)`` references.
    """

    def __init__(self, max_depth: int, decay: float = 0.9995) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth!r}")
        if not (0.0 < decay < 1.0):
            raise ValueError(f"decay must be in (0, 1), got {decay!r}")
        self._max_depth = max_depth
        self._decay = decay
        # position bookkeeping: block -> slot in the Fenwick tree
        self._pos: Dict[Block, int] = {}
        self._slots = max(4 * max_depth, 64)
        self._fenwick = _Fenwick(self._slots)
        self._next_slot = 0
        self._order: List[Optional[Block]] = [None] * self._slots  # slot -> block
        self._scan_slot = 0  # eviction cursor; slots below it are dead
        self._hist: List[int] = [0] * (max_depth + 1)  # 1-indexed distances
        # Decayed histogram, stored scaled: true value = stored / _scale.
        self._recent: List[float] = [0.0] * (max_depth + 1)
        self._recent_weight = 0.0  # scaled, same convention
        self._scale = 1.0
        self.references = 0
        self.cold_references = 0

    @property
    def max_depth(self) -> int:
        return self._max_depth

    # ------------------------------------------------------------ internal

    def _compact(self) -> None:
        """Rebuild the Fenwick tree once the slot counter runs off the end."""
        live = sorted(self._pos.items(), key=lambda item: item[1])
        self._fenwick = _Fenwick(self._slots)
        self._order = [None] * self._slots
        self._pos = {}
        for new_slot, (block, _) in enumerate(live):
            self._pos[block] = new_slot
            self._order[new_slot] = block
            self._fenwick.add(new_slot, 1)
        self._next_slot = len(live)
        self._scan_slot = 0

    def _evict_oldest(self) -> None:
        """Drop the stale end of the stack once it exceeds ``max_depth``.

        The oldest live block has the smallest slot, so a cursor sweeping
        upward from the low end finds victims; each slot is visited at most
        once between compactions, making eviction amortised O(1).
        """
        fenwick = self._fenwick
        order = self._order
        slot = self._scan_slot
        while len(self._pos) > self._max_depth:
            block = order[slot]
            if block is not None:
                del self._pos[block]
                order[slot] = None
                fenwick.add(slot, -1)
            slot += 1
        self._scan_slot = slot

    def _renormalise(self) -> None:
        inv = 1.0 / self._scale
        for i in range(len(self._recent)):
            self._recent[i] *= inv
        self._recent_weight *= inv
        self._scale = 1.0

    # ------------------------------------------------------------- record

    def record(self, block: Block) -> Optional[int]:
        """Record a reference; returns its stack distance (1-based) or None.

        ``None`` means a cold reference or one deeper than ``max_depth``.
        """
        self.references += 1
        self._scale /= self._decay
        if self._scale > _RENORM_THRESHOLD:
            self._renormalise()
        self._recent_weight += self._scale

        distance: Optional[int] = None
        old_slot = self._pos.get(block)
        if old_slot is not None:
            # Rank from the MRU end among active slots: blocks in strictly
            # younger slots, plus one for the block itself.
            total_active = len(self._pos)
            d = total_active - self._fenwick.prefix_sum(old_slot) + 1
            del self._pos[block]
            self._fenwick.add(old_slot, -1)
            self._order[old_slot] = None
            if d <= self._max_depth:
                distance = d
                self._hist[d] += 1
                self._recent[d] += self._scale
        if distance is None:
            self.cold_references += 1

        if self._next_slot >= self._slots:
            self._compact()
        slot = self._next_slot
        self._next_slot += 1
        self._pos[block] = slot
        self._order[slot] = block
        self._fenwick.add(slot, 1)
        if len(self._pos) > self._max_depth:
            self._evict_oldest()
        return distance

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, block: Block) -> bool:
        return block in self._pos

    def hit_rate_at(self, n: int) -> float:
        """Lifetime rate of hits at stack position exactly ``n``.

        This is the exact ``H(n) - H(n-1)`` over the whole reference stream.
        """
        self._check_position(n)
        if self.references == 0:
            return 0.0
        return self._hist[n] / self.references

    def recent_hit_rate_at(self, n: int) -> float:
        """Decayed-rate estimate of ``H(n) - H(n-1)`` (the online cost input)."""
        self._check_position(n)
        if self._recent_weight <= 0.0:
            return 0.0
        return self._recent[n] / self._recent_weight

    def recent_marginal_rate(self, n: int, width: int = 8) -> float:
        """Decayed marginal rate averaged over a small band around ``n``.

        A single stack position is a noisy estimator; Eq. 13 only needs the
        *derivative* of H around the cache size, so averaging positions
        ``[n - width + 1, n]`` stabilises the cost without biasing it.
        """
        self._check_position(n)
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width!r}")
        lo = max(1, n - width + 1)
        if self._recent_weight <= 0.0:
            return 0.0
        band = sum(self._recent[lo : n + 1])
        return band / (self._recent_weight * (n - lo + 1))

    def cumulative_hit_rate(self, n: int) -> float:
        """Lifetime ``H(n)``: fraction of references hitting within depth n."""
        self._check_position(n)
        if self.references == 0:
            return 0.0
        return sum(self._hist[1 : n + 1]) / self.references

    def histogram(self) -> List[int]:
        """Copy of the lifetime stack-distance histogram (index = distance)."""
        return list(self._hist)

    def _check_position(self, n: int) -> None:
        if not (1 <= n <= self._max_depth):
            raise ValueError(
                f"stack position must be in [1, {self._max_depth}], got {n!r}"
            )
