"""An O(1) LRU cache used for the demand cache and the L1 trace filter.

The demand cache (Section 3) holds blocks that have been referenced at least
once and evicts in least-recently-used order.  Values are optional per-block
metadata; for the plain demand cache the block id itself is all that matters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator, Optional, Tuple

Block = Hashable


class LRUCache:
    """Fixed-capacity LRU set/map over block ids.

    ``capacity`` may be 0, giving an always-miss cache (useful when the whole
    buffer pool is loaned to the prefetch partition in tests).
    """

    __slots__ = ("_capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self._capacity = capacity
        self._entries: "OrderedDict[Block, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------- queries

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block: Block) -> bool:
        """Membership test without touching recency or hit counters."""
        return block in self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self._capacity

    def lru_block(self) -> Optional[Block]:
        """The current eviction candidate (least recently used), if any."""
        if not self._entries:
            return None
        return next(iter(self._entries))

    def mru_block(self) -> Optional[Block]:
        if not self._entries:
            return None
        return next(reversed(self._entries))

    def blocks_lru_to_mru(self) -> Iterator[Block]:
        return iter(self._entries)

    def peek(self, block: Block) -> Any:
        """Metadata for ``block`` without touching recency; KeyError if absent."""
        return self._entries[block]

    # ----------------------------------------------------------- mutations

    def access(self, block: Block) -> bool:
        """Reference ``block``: count a hit (and refresh recency) or a miss.

        Does *not* insert on miss; the caller decides whether and when the
        fetched block enters the cache (the simulator inserts only after the
        fetch completes).
        """
        if block in self._entries:
            self._entries.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def touch(self, block: Block) -> bool:
        """Refresh recency without counting a hit or miss."""
        if block in self._entries:
            self._entries.move_to_end(block)
            return True
        return False

    def insert(self, block: Block, value: Any = None) -> Optional[Tuple[Block, Any]]:
        """Insert (or refresh) ``block`` as most recent.

        Returns the evicted ``(block, value)`` pair if the insertion pushed
        the cache over capacity, else ``None``.  A capacity of zero rejects
        the insert and reports no eviction.
        """
        if self._capacity == 0:
            return None
        if block in self._entries:
            self._entries[block] = value
            self._entries.move_to_end(block)
            return None
        self._entries[block] = value
        if len(self._entries) > self._capacity:
            victim = self._entries.popitem(last=False)
            self.evictions += 1
            return victim
        return None

    def remove(self, block: Block) -> Any:
        """Remove ``block``; KeyError if absent.  Not counted as an eviction."""
        return self._entries.pop(block)

    def discard(self, block: Block) -> bool:
        """Remove ``block`` if present; returns whether it was there."""
        if block in self._entries:
            del self._entries[block]
            return True
        return False

    def evict_lru(self) -> Optional[Tuple[Block, Any]]:
        """Explicitly evict the LRU entry (buffer reclaim, Figure 2)."""
        if not self._entries:
            return None
        victim = self._entries.popitem(last=False)
        self.evictions += 1
        return victim

    def resize(self, capacity: int) -> list:
        """Change capacity, evicting LRU entries as needed; returns victims."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self._capacity = capacity
        victims = []
        while len(self._entries) > self._capacity:
            victims.append(self._entries.popitem(last=False))
            self.evictions += 1
        return victims

    # ------------------------------------------------------------- metrics

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
