"""Reproducible campaign bundles: snapshot + results + content hash.

Every campaign run writes one *bundle directory*::

    <out>/<name>-<scenario_hash[:10]>-w<workers>/
        scenario.json   resolved scenario snapshot + its hash
        results.json    full phase reports, fleet metrics, environment
        bundle.json     the deterministic core + the bundle hash

``bundle.json`` is the comparison currency.  Its ``bundle_hash`` is the
SHA-256 of the canonical JSON of ``{scenario snapshot, workers,
deterministic phase outcomes}`` — and *only* the deterministic outcomes:
request counts, outcome totals, prefetch counts, session churn, and
sessions lost, all of which are pure functions of the scenario seed
(sessions are deterministic given their reference streams, and the
resilience layer guarantees advice parity across injected faults).
Wall-clock metrics — advice/sec, latency percentiles, retry counts,
fault-injection tallies — vary run to run and live only in
``results.json``.

The payoff: **two runs of one scenario produce byte-identical bundle
hashes**, on any machine, so a hash match *is* a reproduction and a
deterministic-field mismatch *is* a regression (see
:mod:`repro.campaign.compare`).  Phases that tolerate quota rejections
are the one exception — how many opens a busy worker refuses depends on
timing — so their volatile fields are excluded from the hash (flagged
``quota_tolerant``).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.campaign.spec import ScenarioSpec, scenario_hash
from repro.store.codec import canonical_json

#: Bundle format marker, independent of the scenario schema.
BUNDLE_FORMAT = 1

#: Per-phase result fields that are pure functions of the scenario seed.
DETERMINISTIC_PHASE_FIELDS = (
    "requests",
    "outcomes",
    "prefetches_recommended",
    "sessions",
    "churn_opened",
    "churn_closed",
    "sessions_lost",
)


class BundleError(Exception):
    """A bundle directory is missing, malformed, or unreadable."""


#: Phase-result flags that mark a phase's counts as timing-dependent:
#: quota and overload rejections depend on admission timing, and a
#: worker kill makes request totals depend on checkpoint/failover races.
#: Only the flag itself and losslessness stay hash-covered for them.
VOLATILE_PHASE_FLAGS = ("quota_tolerant", "overload_tolerant", "failover")


def deterministic_phase_record(phase_result: Dict[str, Any]) -> Dict[str, Any]:
    """The hash-covered slice of one phase's result record."""
    record: Dict[str, Any] = {"name": phase_result["name"]}
    volatile = False
    for flag in VOLATILE_PHASE_FLAGS:
        if phase_result.get(flag):
            record[flag] = True
            volatile = True
    if volatile:
        record["sessions_lost"] = phase_result["sessions_lost"]
        return record
    for field in DETERMINISTIC_PHASE_FIELDS:
        record[field] = phase_result[field]
    return record


def bundle_hash_payload(
    scenario_snapshot: Dict[str, Any],
    workers: int,
    phase_results: List[Dict[str, Any]],
) -> Dict[str, Any]:
    return {
        "bundle_format": BUNDLE_FORMAT,
        "scenario": scenario_snapshot,
        "workers": workers,
        "phases": [
            deterministic_phase_record(result) for result in phase_results
        ],
    }


def compute_bundle_hash(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def bundle_dir_name(scenario: ScenarioSpec, workers: int) -> str:
    return f"{scenario.name}-{scenario_hash(scenario)[:10]}-w{workers}"


def _write_json(path: Path, doc: Dict[str, Any]) -> None:
    """Atomic, newline-terminated, key-sorted JSON (diff-friendly)."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def write_bundle(
    out_dir: str,
    scenario: ScenarioSpec,
    workers: int,
    phase_results: List[Dict[str, Any]],
    *,
    fleet_metrics: Optional[Dict[str, Any]] = None,
    environment: Optional[Dict[str, Any]] = None,
    trace_summary: Optional[Dict[str, Any]] = None,
) -> "Bundle":
    """Write one run's bundle directory; returns the loaded :class:`Bundle`.

    Re-running the same scenario overwrites the same directory — that is
    the point: the contents (minus ``results.json`` wall-clock fields)
    must come out identical.  ``trace_summary`` (span accounting from a
    traced run) is wall-clock territory: it lives in ``results.json``
    only and never enters the bundle hash.
    """
    snapshot = scenario.as_dict()
    s_hash = scenario_hash(scenario)
    payload = bundle_hash_payload(snapshot, workers, phase_results)
    b_hash = compute_bundle_hash(payload)
    root = Path(out_dir) / bundle_dir_name(scenario, workers)
    root.mkdir(parents=True, exist_ok=True)
    _write_json(root / "scenario.json", {
        "scenario": snapshot,
        "scenario_hash": s_hash,
    })
    _write_json(root / "results.json", {
        "phases": phase_results,
        "fleet_metrics": fleet_metrics,
        "environment": environment or {},
        "trace_summary": trace_summary,
    })
    _write_json(root / "bundle.json", {
        **payload,
        "name": scenario.name,
        "scenario_hash": s_hash,
        "bundle_hash": b_hash,
    })
    return load_bundle(root)


class Bundle:
    """One run's bundle, loaded back from disk."""

    def __init__(self, path: Path, doc: Dict[str, Any],
                 results: Optional[Dict[str, Any]]) -> None:
        self.path = path
        self.doc = doc
        self.results = results

    @property
    def name(self) -> str:
        return str(self.doc.get("name", self.path.name))

    @property
    def workers(self) -> int:
        return int(self.doc.get("workers", 0))

    @property
    def scenario_hash(self) -> str:
        return str(self.doc.get("scenario_hash", ""))

    @property
    def bundle_hash(self) -> str:
        return str(self.doc.get("bundle_hash", ""))

    @property
    def deterministic_phases(self) -> List[Dict[str, Any]]:
        return list(self.doc.get("phases", []))

    @property
    def result_phases(self) -> List[Dict[str, Any]]:
        if self.results is None:
            return []
        return list(self.results.get("phases", []))

    def verify(self) -> None:
        """Re-derive the bundle hash; raise on tampering/corruption."""
        payload = bundle_hash_payload(
            self.doc.get("scenario", {}), self.workers,
            self.deterministic_phases,
        )
        expected = compute_bundle_hash(payload)
        if expected != self.bundle_hash:
            raise BundleError(
                f"bundle {self.path} fails verification: stored hash "
                f"{self.bundle_hash[:12]} != recomputed {expected[:12]}"
            )


def load_bundle(path: str) -> Bundle:
    """Load a bundle directory (or a direct path to its bundle.json)."""
    root = Path(path)
    if root.is_file():
        root = root.parent
    bundle_path = root / "bundle.json"
    try:
        with open(bundle_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise BundleError(
            f"{root} is not a campaign bundle (no bundle.json)"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise BundleError(f"cannot read {bundle_path}: {exc}") from None
    results = None
    try:
        with open(root / "results.json", "r", encoding="utf-8") as fh:
            results = json.load(fh)
    except (OSError, json.JSONDecodeError):
        pass  # results are informational; the bundle core stands alone
    return Bundle(root, doc, results)


def list_bundles(out_dir: str) -> List[Bundle]:
    """Every bundle under ``out_dir``, sorted by directory name."""
    root = Path(out_dir)
    if not root.is_dir():
        return []
    bundles = []
    for entry in sorted(root.iterdir()):
        if (entry / "bundle.json").is_file():
            try:
                bundles.append(load_bundle(entry))
            except BundleError:
                continue
    return bundles
