"""Scenario specs: the declarative input to the campaign engine.

A scenario file (TOML or JSON) describes one *campaign*: which fleet to
stand up, which workload phases to drive through it, and what to break
while it runs::

    [scenario]
    name = "diurnal-chaos"
    seed = 1999
    mode = "fleet"          # "fleet" = gateway + worker subprocesses,
                            # "server" = one in-process advisory server
    workers = [2]           # fleet-size sweep axis (one bundle per size)
    policy = "tree"
    cache_size = 1024

    [[phase]]
    name = "dawn-ramp"
    clients = 4
    refs = 400              # references per session
    arrival = { curve = "ramp", over_s = 0.5, jitter_s = 0.1 }
    mix = { cello = 0.75, cad = 0.25 }

    [[phase]]
    name = "midday-chaos"
    clients = 2
    refs = 300
    sessions_per_client = 2
    mix = { cad = 0.5, cello = 0.5 }
    mix_end = { cad = 0.9, cello = 0.1 }   # diurnal drift across the phase
    chaos = { reset_every = 150, delay_every = 43, delay_ms = 2.0 }

Everything random about a campaign — arrival jitter, session churn
order, trace mixing, the chaos retry schedule — derives from the single
``scenario.seed`` via :func:`derive_seed`, so one scenario file names
one reproducible experiment: two runs of the same file produce
bit-identical advice streams and therefore identical bundle hashes
(see :mod:`repro.campaign.bundle`).

The parsed :class:`ScenarioSpec` renders back to a canonical plain-dict
snapshot (:meth:`ScenarioSpec.as_dict`) whose SHA-256
(:func:`scenario_hash`) identifies the scenario the same way
:func:`repro.analysis.scheduler.spec_hash` identifies a single
simulation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.service.faults import FaultPlan
from repro.store.codec import canonical_json
from repro.tenancy.config import (
    TenancyConfig,
    TenancyConfigError,
    parse_tenancy_config,
)
from repro.traces.synthetic import TRACE_NAMES

#: Schema marker baked into every scenario snapshot/hash.  Bump when the
#: meaning of a field changes incompatibly so stale baseline bundles
#: compare as "different scenario" instead of silently matching.
CAMPAIGN_SCHEMA = 1

#: Campaign execution targets.
MODES = ("server", "fleet")

#: Client arrival curves (see :func:`repro.campaign.workload.arrival_delays`).
ARRIVAL_CURVES = ("burst", "uniform", "ramp")


class ScenarioError(Exception):
    """The scenario document is malformed or inconsistent."""


def derive_seed(root_seed: int, *parts: Any) -> int:
    """A stable sub-seed for one labelled consumer of the scenario seed.

    Every independent random stream in a campaign (per-phase mixing, a
    client's arrival jitter, the chaos retry backoff) draws its seed from
    ``derive_seed(scenario.seed, <labels...>)``: a 64-bit BLAKE2b digest
    of the canonical-JSON label tuple.  Stable across processes and
    platforms (no ``hash()``), and collision-free for distinct labels in
    any realistic campaign.
    """
    payload = canonical_json([int(root_seed), *parts]).encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big"
    )


@dataclass(frozen=True)
class ArrivalSpec:
    """When a phase's clients connect, relative to the phase start.

    ``burst`` starts everyone immediately; ``uniform`` spaces arrivals
    evenly across ``over_s``; ``ramp`` front-loads the gaps so arrivals
    accelerate (the morning-rush shape).  ``jitter_s`` adds a seeded
    uniform offset in ``[0, jitter_s)`` per client on top of the curve.
    """

    curve: str = "burst"
    over_s: float = 0.0
    jitter_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "curve": self.curve,
            "over_s": self.over_s,
            "jitter_s": self.jitter_s,
        }


@dataclass(frozen=True)
class ChaosProfile:
    """A phase's fault-injection schedule, in scenario-file units.

    Mirrors :class:`repro.service.faults.FaultPlan` (every-Nth reply
    semantics, deterministic by construction) plus the retry budget the
    resilient replay clients get while the profile is active.
    """

    reset_every: Optional[int] = None
    delay_every: Optional[int] = None
    delay_ms: float = 10.0
    truncate_every: Optional[int] = None
    garbage_every: Optional[int] = None
    max_attempts: int = 8

    def plan(self) -> FaultPlan:
        return FaultPlan(
            reset_every=self.reset_every,
            delay_every=self.delay_every,
            delay_s=self.delay_ms / 1000.0,
            truncate_every=self.truncate_every,
            garbage_every=self.garbage_every,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "reset_every": self.reset_every,
            "delay_every": self.delay_every,
            "delay_ms": self.delay_ms,
            "truncate_every": self.truncate_every,
            "garbage_every": self.garbage_every,
            "max_attempts": self.max_attempts,
        }


@dataclass(frozen=True)
class PhaseSpec:
    """One workload phase: who arrives, what they reference, what breaks."""

    name: str
    clients: int = 2
    refs: int = 500
    sessions_per_client: int = 1
    mix: Tuple[Tuple[str, float], ...] = (("cad", 1.0),)
    mix_end: Optional[Tuple[Tuple[str, float], ...]] = None
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    chaos: Optional[ChaosProfile] = None
    tenant: Optional[str] = None
    tolerate_quota: bool = False
    #: Count ``overloaded`` sheds instead of failing (deliberate floods).
    tolerate_overload: bool = False
    #: Fleet mode only: SIGKILL this worker id ``kill_after_s`` seconds
    #: into the phase, exercising failover under live load.
    kill_worker: Optional[str] = None
    kill_after_s: float = 0.5

    def as_dict(self) -> Dict[str, Any]:
        snapshot = {
            "name": self.name,
            "clients": self.clients,
            "refs": self.refs,
            "sessions_per_client": self.sessions_per_client,
            "mix": {name: weight for name, weight in self.mix},
            "mix_end": (
                None if self.mix_end is None
                else {name: weight for name, weight in self.mix_end}
            ),
            "arrival": self.arrival.as_dict(),
            "chaos": None if self.chaos is None else self.chaos.as_dict(),
            "tenant": self.tenant,
            "tolerate_quota": self.tolerate_quota,
        }
        # Newer fields appear only when set, so scenarios written before
        # they existed keep hashing identically (baseline bundles stay
        # comparable across engine versions).
        if self.tolerate_overload:
            snapshot["tolerate_overload"] = True
        if self.kill_worker is not None:
            snapshot["kill_worker"] = self.kill_worker
            snapshot["kill_after_s"] = self.kill_after_s
        return snapshot


@dataclass(frozen=True)
class TenancySpec:
    """Optional multi-tenant serving config for the campaign's workers."""

    store: str
    config: TenancyConfig

    def as_dict(self) -> Dict[str, Any]:
        doc = self.config.as_dict()
        # TenantSpec.as_dict repeats the name inside each entry; drop it
        # so the snapshot round-trips through parse_tenancy_config.
        tenants = {}
        for name, spec in doc["tenants"].items():
            entry = {k: v for k, v in spec.items()
                     if k != "name" and v is not None}
            tenants[name] = entry
        return {
            "store": self.store,
            "memory_budget_bytes": doc["memory_budget_bytes"],
            "tenants": tenants,
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """A parsed campaign scenario (see module docstring)."""

    name: str
    seed: int = 1999
    mode: str = "fleet"
    workers: Tuple[int, ...] = (2,)
    policy: str = "tree"
    cache_size: int = 1024
    phases: Tuple[PhaseSpec, ...] = ()
    tenancy: Optional[TenancySpec] = None
    #: Admission watermark handed to the target (gateway + workers in
    #: fleet mode, the lone server otherwise); ``None`` = no shedding.
    max_inflight: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        """Canonical snapshot; the input to :func:`scenario_hash`."""
        snapshot = {
            "campaign_schema": CAMPAIGN_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "mode": self.mode,
            "workers": list(self.workers),
            "policy": self.policy,
            "cache_size": self.cache_size,
            "phases": [phase.as_dict() for phase in self.phases],
            "tenancy": (
                None if self.tenancy is None else self.tenancy.as_dict()
            ),
        }
        # Conditional for the same hash-stability reason as PhaseSpec.
        if self.max_inflight is not None:
            snapshot["max_inflight"] = self.max_inflight
        return snapshot


def scenario_hash(scenario: ScenarioSpec) -> str:
    """Hex SHA-256 of the scenario's canonical-JSON snapshot."""
    payload = canonical_json(scenario.as_dict())
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------- parsing


def _require(doc: Dict[str, Any], key: str, what: str) -> Any:
    if key not in doc:
        raise ScenarioError(f"{what} needs a {key!r} entry")
    return doc[key]


def _string(raw: Any, what: str) -> str:
    if not isinstance(raw, str) or not raw:
        raise ScenarioError(f"{what} must be a non-empty string")
    return raw


def _int_at_least(raw: Any, minimum: int, what: str) -> int:
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < minimum:
        raise ScenarioError(f"{what} must be an integer >= {minimum}")
    return raw


def _number(raw: Any, minimum: float, what: str) -> float:
    if not isinstance(raw, (int, float)) or isinstance(raw, bool):
        raise ScenarioError(f"{what} must be a number")
    value = float(raw)
    if value < minimum:
        raise ScenarioError(f"{what} must be >= {minimum}")
    return value


def _optional_every(doc: Dict[str, Any], key: str,
                    what: str) -> Optional[int]:
    raw = doc.get(key)
    if raw is None:
        return None
    return _int_at_least(raw, 1, f"{what}: {key}")


def _reject_unknown(doc: Dict[str, Any], allowed: set, what: str) -> None:
    unknown = set(doc) - allowed
    if unknown:
        raise ScenarioError(f"{what} has unknown keys: {sorted(unknown)}")


def _parse_mix(raw: Any, what: str) -> Tuple[Tuple[str, float], ...]:
    if not isinstance(raw, dict) or not raw:
        raise ScenarioError(
            f"{what} must be a non-empty table of trace -> weight"
        )
    mix: List[Tuple[str, float]] = []
    for name in sorted(raw):
        if name not in TRACE_NAMES:
            raise ScenarioError(
                f"{what}: unknown trace {name!r} "
                f"(known traces: {', '.join(TRACE_NAMES)})"
            )
        weight = _number(raw[name], 0.0, f"{what}: weight of {name!r}")
        mix.append((name, weight))
    if not any(weight > 0 for _, weight in mix):
        raise ScenarioError(f"{what}: at least one weight must be > 0")
    return tuple(mix)


def _parse_arrival(raw: Any, what: str) -> ArrivalSpec:
    if not isinstance(raw, dict):
        raise ScenarioError(f"{what} must be a table")
    _reject_unknown(raw, {"curve", "over_s", "jitter_s"}, what)
    curve = raw.get("curve", "burst")
    if curve not in ARRIVAL_CURVES:
        raise ScenarioError(
            f"{what}: curve must be one of {', '.join(ARRIVAL_CURVES)}"
        )
    return ArrivalSpec(
        curve=curve,
        over_s=_number(raw.get("over_s", 0.0), 0.0, f"{what}: over_s"),
        jitter_s=_number(raw.get("jitter_s", 0.0), 0.0, f"{what}: jitter_s"),
    )


def _parse_chaos(raw: Any, what: str) -> ChaosProfile:
    if not isinstance(raw, dict):
        raise ScenarioError(f"{what} must be a table")
    _reject_unknown(
        raw,
        {"reset_every", "delay_every", "delay_ms", "truncate_every",
         "garbage_every", "max_attempts"},
        what,
    )
    profile = ChaosProfile(
        reset_every=_optional_every(raw, "reset_every", what),
        delay_every=_optional_every(raw, "delay_every", what),
        delay_ms=_number(raw.get("delay_ms", 10.0), 0.0, f"{what}: delay_ms"),
        truncate_every=_optional_every(raw, "truncate_every", what),
        garbage_every=_optional_every(raw, "garbage_every", what),
        max_attempts=_int_at_least(
            raw.get("max_attempts", 8), 1, f"{what}: max_attempts"
        ),
    )
    if not profile.plan().injects_anything:
        raise ScenarioError(
            f"{what} enables no fault class "
            "(set reset_every / delay_every / truncate_every / garbage_every, "
            "or drop the chaos table)"
        )
    return profile


def _parse_phase(raw: Any, index: int,
                 tenancy: Optional[TenancySpec]) -> PhaseSpec:
    what = f"phase[{index}]"
    if not isinstance(raw, dict):
        raise ScenarioError(f"{what} must be a table")
    _reject_unknown(
        raw,
        {"name", "clients", "refs", "sessions_per_client", "mix",
         "mix_end", "arrival", "chaos", "tenant", "tolerate_quota",
         "tolerate_overload", "kill_worker", "kill_after_s"},
        what,
    )
    name = _string(raw.get("name", f"phase-{index}"), f"{what}: name")
    what = f"phase {name!r}"
    mix = _parse_mix(_require(raw, "mix", what), f"{what}: mix")
    mix_end = None
    if raw.get("mix_end") is not None:
        mix_end = _parse_mix(raw["mix_end"], f"{what}: mix_end")
        if tuple(n for n, _ in mix_end) != tuple(n for n, _ in mix):
            raise ScenarioError(
                f"{what}: mix_end must name the same traces as mix"
            )
    tenant = raw.get("tenant")
    if tenant is not None:
        tenant = _string(tenant, f"{what}: tenant")
        if tenancy is None:
            raise ScenarioError(
                f"{what} names tenant {tenant!r} but the scenario has "
                "no [tenancy] section"
            )
        if tenancy.config.spec(tenant) is None:
            raise ScenarioError(
                f"{what} names tenant {tenant!r} which is not in the "
                "[tenancy] section"
            )
    tolerate = raw.get("tolerate_quota", False)
    if not isinstance(tolerate, bool):
        raise ScenarioError(f"{what}: tolerate_quota must be a boolean")
    tolerate_overload = raw.get("tolerate_overload", False)
    if not isinstance(tolerate_overload, bool):
        raise ScenarioError(f"{what}: tolerate_overload must be a boolean")
    kill_worker = raw.get("kill_worker")
    if kill_worker is not None:
        kill_worker = _string(kill_worker, f"{what}: kill_worker")
    elif raw.get("kill_after_s") is not None:
        raise ScenarioError(f"{what}: kill_after_s needs kill_worker")
    return PhaseSpec(
        name=name,
        clients=_int_at_least(raw.get("clients", 2), 1, f"{what}: clients"),
        refs=_int_at_least(raw.get("refs", 500), 1, f"{what}: refs"),
        sessions_per_client=_int_at_least(
            raw.get("sessions_per_client", 1), 1,
            f"{what}: sessions_per_client",
        ),
        mix=mix,
        mix_end=mix_end,
        arrival=_parse_arrival(raw.get("arrival", {}), f"{what}: arrival"),
        chaos=(
            None if raw.get("chaos") is None
            else _parse_chaos(raw["chaos"], f"{what}: chaos")
        ),
        tenant=tenant,
        tolerate_quota=tolerate,
        tolerate_overload=tolerate_overload,
        kill_worker=kill_worker,
        kill_after_s=_number(
            raw.get("kill_after_s", 0.5), 0.0, f"{what}: kill_after_s"
        ),
    )


def _parse_tenancy(raw: Any) -> TenancySpec:
    what = "tenancy section"
    if not isinstance(raw, dict):
        raise ScenarioError(f"{what} must be a table")
    _reject_unknown(raw, {"store", "memory_budget_bytes", "tenants"}, what)
    store = _string(_require(raw, "store", what), f"{what}: store")
    doc: Dict[str, Any] = {"tenants": raw.get("tenants")}
    if raw.get("memory_budget_bytes") is not None:
        doc["memory_budget_bytes"] = raw["memory_budget_bytes"]
    try:
        config = parse_tenancy_config(doc)
    except TenancyConfigError as exc:
        raise ScenarioError(f"{what}: {exc}") from None
    return TenancySpec(store=store, config=config)


def parse_scenario(doc: Any) -> ScenarioSpec:
    """Validate a decoded TOML/JSON document into a :class:`ScenarioSpec`."""
    if not isinstance(doc, dict):
        raise ScenarioError("scenario document must be a table/object")
    _reject_unknown(doc, {"scenario", "phase", "tenancy"}, "scenario document")
    head = _require(doc, "scenario", "scenario document")
    if not isinstance(head, dict):
        raise ScenarioError("[scenario] must be a table")
    _reject_unknown(
        head,
        {"name", "seed", "mode", "workers", "policy", "cache_size",
         "max_inflight"},
        "[scenario]",
    )
    name = _string(_require(head, "name", "[scenario]"), "[scenario] name")
    mode = head.get("mode", "fleet")
    if mode not in MODES:
        raise ScenarioError(
            f"[scenario] mode must be one of {', '.join(MODES)}"
        )
    raw_workers = head.get("workers", [2])
    if isinstance(raw_workers, int) and not isinstance(raw_workers, bool):
        raw_workers = [raw_workers]
    if not isinstance(raw_workers, list) or not raw_workers:
        raise ScenarioError(
            "[scenario] workers must be an integer or a non-empty list"
        )
    workers = tuple(
        _int_at_least(value, 1, "[scenario] workers") for value in raw_workers
    )
    if len(set(workers)) != len(workers):
        raise ScenarioError("[scenario] workers has duplicate sweep points")
    from repro.policies.registry import policy_names

    policy = head.get("policy", "tree")
    if policy not in policy_names():
        raise ScenarioError(f"[scenario] unknown policy {policy!r}")
    tenancy = None
    if doc.get("tenancy") is not None:
        tenancy = _parse_tenancy(doc["tenancy"])
    raw_phases = doc.get("phase", [])
    if not isinstance(raw_phases, list) or not raw_phases:
        raise ScenarioError("scenario needs at least one [[phase]]")
    phases = tuple(
        _parse_phase(raw, index, tenancy)
        for index, raw in enumerate(raw_phases)
    )
    names = [phase.name for phase in phases]
    if len(set(names)) != len(names):
        raise ScenarioError("phase names must be unique")
    if mode != "fleet":
        for phase in phases:
            if phase.kill_worker is not None:
                raise ScenarioError(
                    f"phase {phase.name!r}: kill_worker needs mode = "
                    "\"fleet\" (there is no supervised worker to kill "
                    "in server mode)"
                )
    max_inflight = head.get("max_inflight")
    if max_inflight is not None:
        max_inflight = _int_at_least(
            max_inflight, 1, "[scenario] max_inflight"
        )
    return ScenarioSpec(
        name=name,
        seed=_int_at_least(head.get("seed", 1999), 0, "[scenario] seed"),
        mode=mode,
        workers=workers,
        policy=policy,
        cache_size=_int_at_least(
            head.get("cache_size", 1024), 1, "[scenario] cache_size"
        ),
        phases=phases,
        tenancy=tenancy,
        max_inflight=max_inflight,
    )


def load_scenario(path: str) -> ScenarioSpec:
    """Read and validate a scenario file (``.toml`` or ``.json``)."""
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path}: {exc}") from None
    if str(path).endswith(".json"):
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ScenarioError(
                f"scenario {path} is not valid JSON: {exc}"
            ) from None
    else:
        try:
            import tomllib
        except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
            raise ScenarioError(
                f"scenario {path} is TOML but this Python has no tomllib; "
                "convert the scenario to .json"
            ) from None
        try:
            doc = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ScenarioError(
                f"scenario {path} is not valid TOML: {exc}"
            ) from None
    return parse_scenario(doc)
