"""Compare two campaign bundles: per-metric deltas + regression flags.

The comparison has three verdict tiers:

* **reproduced** — the bundle hashes match.  Same scenario, same
  deterministic outcomes; nothing else to check.
* **regression** — the scenario hashes match but a deterministic field
  differs (or the candidate lost sessions, or a phase went missing).
  The runs should have been bit-identical and were not: the advisory
  stack changed behaviour.  ``repro campaign compare`` exits non-zero.
* **perf drift** — wall-clock metrics (advice/sec, latency percentiles)
  moved beyond tolerance.  Reported and flagged, but non-fatal by
  default: perf fields are machine-dependent, and the committed CI
  baseline was produced on different hardware.  ``--fail-on-perf``
  promotes drift to a failure for same-machine A/B runs.

When the scenario hashes differ the runs measured different experiments;
deterministic deltas are then expected and reported as informational
only (never a regression), so bundles can still be eyeballed across
scenario edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.bundle import VOLATILE_PHASE_FLAGS, Bundle

#: Deterministic scalar metrics compared per phase (hash-covered).
DETERMINISTIC_METRICS = (
    "requests",
    "prefetches_recommended",
    "sessions",
    "churn_opened",
    "churn_closed",
    "sessions_lost",
)

#: Outcome counters, compared individually (hash-covered via "outcomes").
OUTCOME_KEYS = ("demand_hit", "prefetch_hit", "miss")

#: Wall-clock metrics from results.json: (name, higher_is_better).
PERF_METRICS = (
    ("advice_per_second", True),
    ("latency_p50_ms", False),
    ("latency_p95_ms", False),
    ("latency_p99_ms", False),
)

#: Relative drift in a perf metric tolerated before flagging.
DEFAULT_PERF_TOLERANCE = 0.5


@dataclass
class DeltaRow:
    """One metric of one phase, side by side."""

    phase: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    kind: str  # "det" | "perf"
    flag: str = ""  # "", "REGRESSION", "PERF"

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline


@dataclass
class Comparison:
    """The full verdict of one baseline-vs-candidate comparison."""

    baseline: Bundle
    candidate: Bundle
    scenario_match: bool
    reproduced: bool
    rows: List[DeltaRow] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    perf_flags: List[str] = field(default_factory=list)

    def passed(self, *, fail_on_perf: bool = False) -> bool:
        if self.regressions:
            return False
        if fail_on_perf and self.perf_flags:
            return False
        return True


def _phase_index(phases: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    return {str(phase.get("name")): phase for phase in phases}


def _number(record: Optional[Dict[str, Any]], key: str) -> Optional[float]:
    if record is None:
        return None
    value = record.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _outcome(record: Optional[Dict[str, Any]], key: str) -> Optional[float]:
    if record is None:
        return None
    outcomes = record.get("outcomes")
    if not isinstance(outcomes, dict):
        return None
    value = outcomes.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def compare_bundles(
    baseline: Bundle,
    candidate: Bundle,
    *,
    perf_tolerance: float = DEFAULT_PERF_TOLERANCE,
) -> Comparison:
    """Build the per-metric delta table and collect regressions."""
    scenario_match = (
        bool(baseline.scenario_hash)
        and baseline.scenario_hash == candidate.scenario_hash
        and baseline.workers == candidate.workers
    )
    comparison = Comparison(
        baseline=baseline,
        candidate=candidate,
        scenario_match=scenario_match,
        reproduced=(
            bool(baseline.bundle_hash)
            and baseline.bundle_hash == candidate.bundle_hash
        ),
    )
    base_det = _phase_index(baseline.deterministic_phases)
    cand_det = _phase_index(candidate.deterministic_phases)
    base_res = _phase_index(baseline.result_phases)
    cand_res = _phase_index(candidate.result_phases)

    if scenario_match:
        missing = sorted(set(base_det) - set(cand_det))
        extra = sorted(set(cand_det) - set(base_det))
        for name in missing:
            comparison.regressions.append(
                f"phase {name!r} missing from candidate"
            )
        for name in extra:
            comparison.regressions.append(
                f"phase {name!r} not present in baseline"
            )

    for name, base_phase in base_det.items():
        cand_phase = cand_det.get(name)
        volatile = any(
            bool(base_phase.get(flag)) or bool((cand_phase or {}).get(flag))
            for flag in VOLATILE_PHASE_FLAGS
        )
        det_metrics: Tuple[str, ...] = (
            ("sessions_lost",) if volatile else DETERMINISTIC_METRICS
        )
        for metric in det_metrics:
            row = DeltaRow(
                phase=name,
                metric=metric,
                baseline=_number(base_phase, metric),
                candidate=_number(cand_phase, metric),
                kind="det",
            )
            _flag_deterministic(comparison, row)
            comparison.rows.append(row)
        if not volatile:
            for key in OUTCOME_KEYS:
                row = DeltaRow(
                    phase=name,
                    metric=f"outcomes.{key}",
                    baseline=_outcome(base_phase, key),
                    candidate=_outcome(cand_phase, key),
                    kind="det",
                )
                _flag_deterministic(comparison, row)
                comparison.rows.append(row)
        for metric, higher_better in PERF_METRICS:
            row = DeltaRow(
                phase=name,
                metric=metric,
                baseline=_number(base_res.get(name), metric),
                candidate=_number(cand_res.get(name), metric),
                kind="perf",
            )
            _flag_perf(comparison, row, higher_better, perf_tolerance)
            comparison.rows.append(row)

    # Losing sessions is a regression regardless of what the baseline did.
    lost = sum(
        int(_number(phase, "sessions_lost") or 0)
        for phase in cand_det.values()
    )
    if lost > 0:
        comparison.regressions.append(
            f"candidate lost {lost} session(s) (sessions_lost > 0)"
        )
    return comparison


def _flag_deterministic(comparison: Comparison, row: DeltaRow) -> None:
    if not comparison.scenario_match:
        return  # different experiments; deltas are informational
    if row.candidate is None or row.baseline is None:
        return  # missing-phase regressions are reported separately
    if row.candidate != row.baseline:
        row.flag = "REGRESSION"
        comparison.regressions.append(
            f"{row.phase}: deterministic field {row.metric} changed "
            f"{row.baseline:g} -> {row.candidate:g} under an identical "
            "scenario"
        )


def _flag_perf(
    comparison: Comparison,
    row: DeltaRow,
    higher_better: bool,
    tolerance: float,
) -> None:
    if row.baseline is None or row.candidate is None or row.baseline <= 0:
        return
    drift = (row.candidate - row.baseline) / row.baseline
    worse = -drift if higher_better else drift
    if worse > tolerance:
        row.flag = "PERF"
        comparison.perf_flags.append(
            f"{row.phase}: {row.metric} moved {drift:+.0%} "
            f"({row.baseline:g} -> {row.candidate:g}), beyond "
            f"{tolerance:.0%} tolerance"
        )


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"


def _format_delta(row: DeltaRow) -> str:
    delta = row.delta
    if delta is None:
        return "-"
    if row.kind == "perf" and row.baseline:
        return f"{delta / row.baseline:+.1%}"
    if float(delta).is_integer():
        return f"{int(delta):+d}"
    return f"{delta:+.2f}"


def render_comparison(comparison: Comparison) -> str:
    """The human-facing report: header, per-phase table, verdict."""
    base, cand = comparison.baseline, comparison.candidate
    lines = [
        "campaign compare",
        f"  baseline:  {base.name} (bundle {base.bundle_hash[:12]}, "
        f"workers={base.workers}) at {base.path}",
        f"  candidate: {cand.name} (bundle {cand.bundle_hash[:12]}, "
        f"workers={cand.workers}) at {cand.path}",
        "  scenario:  "
        + (
            f"MATCH ({base.scenario_hash[:12]})"
            if comparison.scenario_match
            else f"DIFFER ({base.scenario_hash[:12]} vs "
            f"{cand.scenario_hash[:12]}) — deltas informational"
        ),
    ]
    if comparison.reproduced:
        lines.append(
            "  verdict:   REPRODUCED — bundle hashes are identical"
        )
    header = f"  {'metric':<28}{'baseline':>14}{'candidate':>14}" \
             f"{'delta':>12}  flag"
    current_phase = None
    for row in comparison.rows:
        if row.phase != current_phase:
            current_phase = row.phase
            lines.append("")
            lines.append(f"phase {row.phase!r}")
            lines.append(header)
        lines.append(
            f"  {row.metric:<28}"
            f"{_format_value(row.baseline):>14}"
            f"{_format_value(row.candidate):>14}"
            f"{_format_delta(row):>12}"
            f"  {row.flag}".rstrip()
        )
    lines.append("")
    if comparison.regressions:
        lines.append(f"regressions ({len(comparison.regressions)}):")
        for note in comparison.regressions:
            lines.append(f"  ! {note}")
    if comparison.perf_flags:
        lines.append(f"perf drift ({len(comparison.perf_flags)}):")
        for note in comparison.perf_flags:
            lines.append(f"  ~ {note}")
    if not comparison.regressions and not comparison.perf_flags:
        lines.append(
            "ok: no deterministic regressions, perf within tolerance"
        )
    return "\n".join(lines)
