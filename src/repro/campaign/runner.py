"""The campaign runner: scenario in, hashed bundle out.

For every fleet size on the scenario's ``workers`` axis the runner
stands up a target — a real gateway + supervised worker subprocesses
(``mode = "fleet"`` via :func:`repro.cluster.fleet.start_fleet`) or a
single in-process advisory server (``mode = "server"``, the fast path
for tests and laptops) — then drives each phase through it in order:

1. synthesise every client's seeded reference stream
   (:mod:`repro.campaign.workload`);
2. if the phase has a chaos profile, put a deterministic
   :class:`~repro.service.faults.ChaosProxy` between the clients and the
   target and switch the clients to seeded-retry resilient mode;
3. replay with the scenario's arrival curve and session churn
   (:func:`repro.service.replay.replay_async` with per-client streams,
   arrival delays, and the open/close churn hook);
4. record the phase outcome: advice/sec and latency percentiles (the
   wall-clock story), plus the deterministic core — request counts,
   outcome totals, churn, and sessions lost — that lands in the bundle
   hash.

Nothing here calls ``random`` directly: every random draw is seeded via
:func:`~repro.campaign.spec.derive_seed` from the one scenario seed, so
a scenario is a *name for an experiment*, not a dice roll.
"""

from __future__ import annotations

import asyncio
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign.bundle import Bundle, write_bundle
from repro.campaign.spec import (
    PhaseSpec,
    ScenarioSpec,
    derive_seed,
    scenario_hash,
)
from repro.campaign.workload import arrival_delays, phase_client_blocks
from repro.service.client import RetryPolicy
from repro.service.faults import ChaosProxy
from repro.service.replay import replay_async
from repro.store.codec import canonical_json

Echo = Optional[Callable[[str], None]]


class CampaignError(Exception):
    """A campaign run failed (target would not start, or a phase died)."""


class _Target:
    """What a phase needs from the thing it is loading: a port and loss
    accounting.  Two implementations: in-process server, real fleet."""

    host = "127.0.0.1"

    @property
    def port(self) -> int:
        raise NotImplementedError

    @property
    def sessions_lost(self) -> int:
        return 0

    @property
    def failovers_resumed(self) -> int:
        return 0

    def kill_worker(self, worker_id: str) -> bool:
        raise CampaignError(
            f"cannot kill worker {worker_id!r}: target has no supervised "
            "workers (kill_worker needs mode = \"fleet\")"
        )

    async def metrics(self) -> Optional[Dict[str, Any]]:
        return None

    def trace_summary(self) -> Optional[Dict[str, Any]]:
        """Span accounting for the run (results.json only, never hashed)."""
        return None

    async def aclose(self) -> None:
        raise NotImplementedError


class _ServerTarget(_Target):
    """One in-process :class:`~repro.service.server.PrefetchService`."""

    def __init__(self, service, server) -> None:
        self.service = service
        self._server = server

    @property
    def port(self) -> int:
        from repro.service.server import bound_port

        return bound_port(self._server)

    async def metrics(self) -> Optional[Dict[str, Any]]:
        return self.service.metrics.as_dict()

    def trace_summary(self) -> Optional[Dict[str, Any]]:
        if self.service.tracer is None:
            return None
        self.service.tracer.flush()
        return self.service.tracer.summary()

    async def aclose(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        self.service.close_connections()
        if self.service.tracer is not None:
            self.service.tracer.close()


class _FleetTarget(_Target):
    """A real gateway + supervised worker subprocesses."""

    def __init__(self, fleet) -> None:
        self.fleet = fleet

    @property
    def port(self) -> int:
        return self.fleet.port

    @property
    def sessions_lost(self) -> int:
        return self.fleet.sessions_lost

    @property
    def failovers_resumed(self) -> int:
        return self.fleet.gateway.stats.failovers_resumed

    def kill_worker(self, worker_id: str) -> bool:
        try:
            return self.fleet.supervisor.kill_worker(worker_id)
        except KeyError as exc:
            raise CampaignError(str(exc)) from None

    async def metrics(self) -> Optional[Dict[str, Any]]:
        totals, per_worker = await self.fleet.metrics()
        return {
            "fleet": totals.as_dict(),
            "per_worker": per_worker,
            "gateway": self.fleet.gateway.stats.as_dict(),
        }

    def trace_summary(self) -> Optional[Dict[str, Any]]:
        # Worker spans land in the shared trace dir via each worker's own
        # tracer; only the gateway's accounting is reachable in-process.
        tracer = self.fleet.gateway.tracer
        if tracer is None:
            return None
        tracer.flush()
        return tracer.summary()

    async def aclose(self) -> None:
        await self.fleet.aclose()


async def _start_target(
    scenario: ScenarioSpec, workers: int, workdir: Path, echo: Echo,
    trace_dir: Optional[str] = None,
) -> _Target:
    tenancy = scenario.tenancy
    tenant_config_path: Optional[str] = None
    if tenancy is not None:
        # Workers take the config as a file path; materialise the parsed
        # (already-validated) section into the run's working directory.
        tenant_config_path = str(workdir / "tenants.json")
        doc = tenancy.as_dict()
        payload = {"tenants": doc["tenants"]}
        if doc["memory_budget_bytes"] is not None:
            payload["memory_budget_bytes"] = doc["memory_budget_bytes"]
        Path(tenant_config_path).write_text(
            canonical_json(payload) + "\n", encoding="utf-8"
        )
    checkpoint_dir = workdir / "checkpoints"
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    if scenario.mode == "fleet":
        from repro.cluster.fleet import start_fleet

        try:
            fleet = await start_fleet(
                workers=workers,
                checkpoint_dir=str(checkpoint_dir),
                checkpoint_every_s=1.0,
                store=(None if tenancy is None else tenancy.store),
                tenant_config=tenant_config_path,
                max_inflight=scenario.max_inflight,
                trace_dir=trace_dir,
                trace_seed=scenario.seed,
                echo=echo,
            )
        except Exception as exc:
            raise CampaignError(f"fleet failed to start: {exc}") from exc
        return _FleetTarget(fleet)
    from repro.service.server import PrefetchService

    service_kwargs: Dict[str, Any] = {
        "checkpoint_dir": str(checkpoint_dir),
        "identity": "campaign",
    }
    if scenario.max_inflight is not None:
        from repro.service.overload import OverloadPolicy

        service_kwargs["overload"] = OverloadPolicy(
            max_inflight=scenario.max_inflight
        )
    if tenancy is not None:
        from repro.store import ModelStore
        from repro.tenancy.manager import TenancyManager

        store = ModelStore(tenancy.store)
        service_kwargs["store"] = store
        service_kwargs["tenancy"] = TenancyManager(store, tenancy.config)
        service_kwargs["memory_budget_bytes"] = (
            tenancy.config.memory_budget_bytes
        )
    if trace_dir is not None:
        from repro.obs.trace import Tracer

        # Head-sample against the scenario seed so which sessions are
        # traced is itself reproducible run to run.
        service_kwargs["tracer"] = Tracer(
            "campaign", trace_dir=trace_dir, seed=scenario.seed
        )
    service = PrefetchService(**service_kwargs)
    server = await service.start("127.0.0.1", 0)
    return _ServerTarget(service, server)


async def _run_phase(
    scenario: ScenarioSpec,
    phase: PhaseSpec,
    target: _Target,
    echo: Echo,
) -> Dict[str, Any]:
    streams = phase_client_blocks(phase, scenario.seed)
    delays = arrival_delays(
        phase.arrival, phase.clients, scenario.seed, phase.name
    )
    churn = {"open": 0, "close": 0}

    def _on_event(_client: int, event: str) -> None:
        churn[event] += 1

    retry = None
    proxy: Optional[ChaosProxy] = None
    port = target.port
    if phase.chaos is not None:
        proxy = ChaosProxy(target.host, port, plan=phase.chaos.plan())
        await proxy.start()
        port = proxy.port
        retry = RetryPolicy(
            max_attempts=phase.chaos.max_attempts,
            base_delay_s=0.02,
            seed=derive_seed(scenario.seed, phase.name, "retry"),
        )
    lost_before = target.sessions_lost
    failovers_before = target.failovers_resumed
    kill_task: Optional[asyncio.Task] = None
    worker_killed = False

    async def _kill_later() -> None:
        nonlocal worker_killed
        await asyncio.sleep(phase.kill_after_s)
        worker_killed = target.kill_worker(phase.kill_worker)
        if echo is not None and worker_killed:
            echo(
                f"campaign: phase {phase.name!r} killed worker "
                f"{phase.kill_worker} at t+{phase.kill_after_s:g}s"
            )

    started = time.perf_counter()
    try:
        if phase.kill_worker is not None:
            kill_task = asyncio.ensure_future(_kill_later())
        report = await replay_async(
            [],
            host=target.host,
            port=port,
            clients=phase.clients,
            policy=scenario.policy,
            cache_size=scenario.cache_size,
            retry=retry,
            tenant=phase.tenant,
            sessions_per_client=phase.sessions_per_client,
            tolerate_quota=phase.tolerate_quota,
            tolerate_overload=phase.tolerate_overload,
            client_blocks=streams,
            arrival_delays=delays,
            on_session_event=_on_event,
        )
    except Exception as exc:
        raise CampaignError(
            f"phase {phase.name!r} failed: {exc}"
        ) from exc
    finally:
        if kill_task is not None:
            if not kill_task.done():
                kill_task.cancel()
            await asyncio.gather(kill_task, return_exceptions=True)
        if proxy is not None:
            await proxy.aclose()
    wall = time.perf_counter() - started
    sessions_lost = (target.sessions_lost - lost_before) + (
        churn["open"] - churn["close"]
    )
    flat = report.as_dict()
    result: Dict[str, Any] = {
        "name": phase.name,
        "clients": phase.clients,
        "refs": phase.refs,
        "quota_tolerant": phase.tolerate_quota,
        "overload_tolerant": phase.tolerate_overload,
        "failover": phase.kill_worker is not None,
        "requests": flat["requests"],
        "outcomes": flat["outcomes"],
        "prefetches_recommended": flat["prefetches_recommended"],
        "sessions": flat["sessions"],
        "quota_rejected": flat["quota_rejected"],
        "overload_rejected": flat["overload_rejections"],
        "overload_backoffs": flat["overload_backoffs"],
        "churn_opened": churn["open"],
        "churn_closed": churn["close"],
        "sessions_lost": sessions_lost,
        "wall_seconds": flat["wall_seconds"],
        "advice_per_second": flat["advice_per_second"],
        "latency_p50_ms": flat["latency_p50_ms"],
        "latency_p95_ms": flat["latency_p95_ms"],
        "latency_p99_ms": flat["latency_p99_ms"],
        "retries": flat["retries"],
        "resumes": flat["resumes"],
        "cold_restarts": flat["cold_restarts"],
        "degraded_clients": flat["degraded_clients"],
        "chaos": None if proxy is None else proxy.stats.as_dict(),
    }
    if phase.kill_worker is not None:
        result["kill_worker"] = phase.kill_worker
        result["worker_killed"] = worker_killed
        result["failovers_resumed"] = (
            target.failovers_resumed - failovers_before
        )
    if echo is not None:
        chaos_note = ""
        if proxy is not None:
            chaos_note = (
                f" chaos[drops={proxy.stats.drops_injected}"
                f" retries={flat['retries']}]"
            )
        if phase.tolerate_overload:
            chaos_note += (
                f" overload_rejections={flat['overload_rejections']}"
                f" overload_backoffs={flat['overload_backoffs']}"
            )
        if phase.kill_worker is not None:
            chaos_note += (
                f" failovers_resumed={result['failovers_resumed']}"
            )
        echo(
            f"campaign: phase {phase.name!r} done in {wall:.2f}s "
            f"advice/s={flat['advice_per_second']} "
            f"p99={flat['latency_p99_ms']}ms "
            f"sessions_lost={sessions_lost}{chaos_note}"
        )
    return result


async def run_scenario_async(
    scenario: ScenarioSpec,
    *,
    out_dir: str,
    workdir: Optional[str] = None,
    trace_dir: Optional[str] = None,
    echo: Echo = None,
) -> List[Tuple[Bundle, Dict[str, Any]]]:
    """Run every fleet size on the scenario's axis; one bundle per size.

    Returns ``[(bundle, run_record), ...]`` in axis order.  ``workdir``
    holds scratch state (worker checkpoints, the materialised tenancy
    config); it defaults to ``<out_dir>/<bundle-dir>/work``.
    ``trace_dir`` switches on distributed tracing for the target; span
    accounting lands in ``results.json`` only, so bundle hashes are
    byte-identical with tracing on or off.
    """
    out: List[Tuple[Bundle, Dict[str, Any]]] = []
    axis = scenario.workers if scenario.mode == "fleet" else (1,)
    for workers in axis:
        from repro.campaign.bundle import bundle_dir_name

        scratch = Path(
            workdir if workdir is not None
            else Path(out_dir) / bundle_dir_name(scenario, workers) / "work"
        )
        scratch.mkdir(parents=True, exist_ok=True)
        if echo is not None:
            echo(
                f"campaign: {scenario.name!r} "
                f"(hash {scenario_hash(scenario)[:10]}) "
                f"mode={scenario.mode} workers={workers} "
                f"phases={len(scenario.phases)}"
            )
        target = await _start_target(
            scenario, workers, scratch, echo, trace_dir
        )
        phase_results: List[Dict[str, Any]] = []
        try:
            for phase in scenario.phases:
                phase_results.append(
                    await _run_phase(scenario, phase, target, echo)
                )
            metrics = await target.metrics()
            trace_summary = target.trace_summary()
        finally:
            await target.aclose()
        record = {
            "workers": workers,
            "mode": scenario.mode,
            "phases": phase_results,
            "sessions_lost": sum(
                result["sessions_lost"] for result in phase_results
            ),
        }
        bundle = write_bundle(
            out_dir, scenario, workers, phase_results,
            fleet_metrics=metrics,
            trace_summary=trace_summary,
            environment={
                "python": platform.python_version(),
                "platform": sys.platform,
                "created_at": time.strftime(
                    "%Y-%m-%dT%H:%M:%S%z", time.localtime()
                ),
            },
        )
        if echo is not None:
            echo(
                f"campaign: bundle {bundle.path} "
                f"bundle_hash={bundle.bundle_hash[:12]} "
                f"sessions_lost={record['sessions_lost']}"
            )
        out.append((bundle, record))
    return out


def run_scenario(
    scenario: ScenarioSpec, **kwargs: Any
) -> List[Tuple[Bundle, Dict[str, Any]]]:
    """Blocking wrapper around :func:`run_scenario_async`."""
    return asyncio.run(run_scenario_async(scenario, **kwargs))
