"""Deterministic workload synthesis for campaign phases.

Each client in a phase gets its *own* reference stream, mixed from the
scenario's named synthetic generators: the phase's ``mix`` weights pick
which trace the next reference comes from, and an optional ``mix_end``
linearly drifts the weights across the stream (the diurnal shift — a
morning cello-heavy mix sliding into an afternoon cad-heavy one inside
one phase).  Component traces are offset into disjoint block-id ranges
so a cello reference can never alias a cad block.

Everything is a pure function of ``(scenario seed, phase name, client
index)`` via :func:`repro.campaign.spec.derive_seed`: same scenario,
same streams, on any machine — which is what makes campaign bundles
hash-reproducible.

Arrival timing lives here too (:func:`arrival_delays`): curves shape
*when* clients connect, seeded jitter de-synchronises them, and none of
it affects the advice stream — only the wall-clock metrics.
"""

from __future__ import annotations

from random import Random
from typing import Dict, List

from repro.campaign.spec import ArrivalSpec, PhaseSpec, derive_seed
from repro.traces.synthetic import make_trace

#: Headroom on each component trace so a drifting mix can draw most of a
#: phase's references from one source without exhausting it.
_POOL_SLACK = 1.25


def _component_pools(
    phase: PhaseSpec, scenario_seed: int, client: int
) -> Dict[str, List[int]]:
    """Per-trace reference pools for one client, id-offset to disjointness."""
    pools: Dict[str, List[int]] = {}
    length = max(64, int(phase.refs * _POOL_SLACK) + 1)
    offset = 0
    for name, _weight in phase.mix:
        trace = make_trace(
            name,
            num_references=length,
            seed=derive_seed(scenario_seed, phase.name, client, name),
        )
        blocks = trace.as_list()
        span = max(int(block) for block in blocks) + 1
        pools[name] = [int(block) + offset for block in blocks]
        offset += span
    return pools


def client_blocks(
    phase: PhaseSpec, scenario_seed: int, client: int
) -> List[int]:
    """One client's mixed reference stream for ``phase`` (see module doc)."""
    pools = _component_pools(phase, scenario_seed, client)
    cursor = {name: 0 for name in pools}
    start = dict(phase.mix)
    end = dict(phase.mix_end) if phase.mix_end is not None else start
    names = [name for name, _ in phase.mix]
    rng = Random(derive_seed(scenario_seed, phase.name, client, "mix"))
    stream: List[int] = []
    denominator = max(1, phase.refs - 1)
    for position in range(phase.refs):
        t = position / denominator
        weights = [
            (1.0 - t) * start[name] + t * end[name] for name in names
        ]
        total = sum(weights)
        if total <= 0.0:
            # A drift can momentarily zero every weight; fall back to the
            # uniform pick rather than dividing by zero.
            weights = [1.0] * len(names)
            total = float(len(names))
        pick = rng.random() * total
        chosen = names[-1]
        for name, weight in zip(names, weights):
            pick -= weight
            if pick < 0.0:
                chosen = name
                break
        pool = pools[chosen]
        index = cursor[chosen]
        cursor[chosen] = (index + 1) % len(pool)
        stream.append(pool[index])
    return stream


def phase_client_blocks(
    phase: PhaseSpec, scenario_seed: int
) -> List[List[int]]:
    """Every client's stream for one phase, in client order."""
    return [
        client_blocks(phase, scenario_seed, client)
        for client in range(phase.clients)
    ]


def arrival_delays(
    arrival: ArrivalSpec, clients: int, scenario_seed: int, phase_name: str
) -> List[float]:
    """Per-client connect delays (seconds) for one phase.

    ``burst``: everyone at 0.  ``uniform``: client *i* of *n* at
    ``i/n * over_s``.  ``ramp``: quadratic spacing, so early arrivals
    trickle and late ones flood in (``(i/n)**2`` inverted: gaps shrink).
    Seeded jitter is added per client.
    """
    rng = Random(derive_seed(scenario_seed, phase_name, "arrival"))
    delays: List[float] = []
    for client in range(clients):
        fraction = client / clients
        if arrival.curve == "uniform":
            base = fraction * arrival.over_s
        elif arrival.curve == "ramp":
            base = (1.0 - (1.0 - fraction) ** 2) * arrival.over_s
        else:  # burst
            base = 0.0
        jitter = rng.random() * arrival.jitter_s
        delays.append(base + jitter)
    return delays
