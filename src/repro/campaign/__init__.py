"""Scenario lab: declarative campaigns over the advisory fleet.

PRs 1-6 built the pieces — a faithful single-stream simulator, an
advisory server, chaos tooling, a sharded fleet, multi-tenant serving.
This package is the harness that exercises them *together*: a campaign
is a declarative TOML/JSON scenario (client arrival and churn curves,
diurnal trace-mix drift, per-tenant quotas, chaos profiles, fleet-size
sweep axes) that the engine drives end-to-end against a real gateway +
worker fleet, capturing a reproducible result bundle per fleet size.

* :mod:`~repro.campaign.spec`     — scenario parsing/validation and the
  single-seed discipline (:func:`derive_seed`): every random stream in
  a campaign derives from ``scenario.seed``;
* :mod:`~repro.campaign.workload` — deterministic per-client reference
  streams from the synthetic trace generators, mix drift, arrival
  curves;
* :mod:`~repro.campaign.runner`   — the driver: stand up the target
  (in-process server or real fleet), run each phase through
  :func:`repro.service.replay.replay_async` (with a
  :class:`~repro.service.faults.ChaosProxy` in the path when the phase
  calls for faults), collect per-phase reports;
* :mod:`~repro.campaign.bundle`   — the hashed result bundle: scenario
  snapshot + deterministic outcomes under one SHA-256, wall-clock
  metrics alongside.  Two runs of one scenario hash identically;
* :mod:`~repro.campaign.compare`  — per-metric delta table against a
  named baseline bundle, with regression flags (``repro campaign
  compare`` exits non-zero on a deterministic mismatch or lost
  sessions).

CLI: ``repro campaign run|compare|list`` (see ``docs/EXPERIMENTS.md``,
"Campaigns").
"""

from repro.campaign.bundle import (
    Bundle,
    BundleError,
    compute_bundle_hash,
    list_bundles,
    load_bundle,
    write_bundle,
)
from repro.campaign.compare import (
    Comparison,
    compare_bundles,
    render_comparison,
)
from repro.campaign.runner import CampaignError, run_scenario, run_scenario_async
from repro.campaign.spec import (
    ArrivalSpec,
    ChaosProfile,
    PhaseSpec,
    ScenarioError,
    ScenarioSpec,
    TenancySpec,
    derive_seed,
    load_scenario,
    parse_scenario,
    scenario_hash,
)

__all__ = [
    "ArrivalSpec",
    "Bundle",
    "BundleError",
    "CampaignError",
    "ChaosProfile",
    "Comparison",
    "PhaseSpec",
    "ScenarioError",
    "ScenarioSpec",
    "TenancySpec",
    "compare_bundles",
    "compute_bundle_hash",
    "derive_seed",
    "list_bundles",
    "load_bundle",
    "load_scenario",
    "parse_scenario",
    "render_comparison",
    "run_scenario",
    "run_scenario_async",
    "scenario_hash",
    "write_bundle",
]
