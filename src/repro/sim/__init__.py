"""Trace-driven simulation engine, clock, disk model and statistics."""

from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel, QueuedDiskModel
from repro.sim.engine import (
    IssueStatus,
    PrefetchContext,
    PrefetchDecision,
    Simulator,
    StepResult,
    simulate,
)
from repro.sim.stats import SimulationStats

__all__ = [
    "DiskModel",
    "QueuedDiskModel",
    "IssueStatus",
    "PrefetchContext",
    "PrefetchDecision",
    "StepResult",
    "SimClock",
    "SimulationStats",
    "Simulator",
    "simulate",
]
