"""Trace-driven simulation engine, clock, disk model and statistics."""

from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel, QueuedDiskModel
from repro.sim.engine import IssueStatus, PrefetchContext, Simulator, simulate
from repro.sim.stats import SimulationStats

__all__ = [
    "DiskModel",
    "QueuedDiskModel",
    "IssueStatus",
    "PrefetchContext",
    "SimClock",
    "SimulationStats",
    "Simulator",
    "simulate",
]
