"""The trace-driven simulation engine (Section 8).

One :class:`Simulator` runs one policy over one trace at one cache size.
Per application reference (one *access period*, Section 3) the engine:

1. lets the policy observe the access (tree update, predictability and
   last-visited-child bookkeeping) against the pre-reference cache state;
2. resolves the reference: demand hit, prefetch hit (block moves to the
   demand cache; CPU stalls if the block is still in flight, Figure 5), or
   miss (a buffer is reclaimed per Figure 2 and the block demand-fetched);
3. runs the policy's prefetch round: the policy proposes candidates and the
   engine applies Section 7's rule - prefetch while the benefit net of
   overhead covers the cheapest eviction's cost;
4. folds the number of prefetches issued into the running estimate of ``s``
   and advances the clock by the period's computation.

The engine owns everything model-level (clock, disk, buffer pool, cost
comparisons); policies only choose *which* blocks to propose and whether the
cost-benefit gate applies (the ``forced`` flag models next-limit's
unconditional one-block lookahead).
"""

from __future__ import annotations

import enum
from time import perf_counter
from typing import (
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.cache.buffer_cache import BufferCache, Location
from repro.cache.prefetch_cache import PrefetchEntry
from repro.core import costbenefit
from repro.core.estimators import PrefetchRateEstimator
from repro.params import SystemParams
from repro.sim.clock import SimClock
from repro.obs import profile as _profile
from repro.sim.disk import DiskModel, QueuedDiskModel
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.policies.base import Policy

Block = Hashable


class IssueStatus(enum.Enum):
    """Outcome of one candidate proposed to :meth:`PrefetchContext.try_issue`."""

    ISSUED = "issued"
    ALREADY_CACHED = "already_cached"
    REJECTED_COST = "rejected_cost"
    NO_CAPACITY = "no_capacity"


class PrefetchDecision(NamedTuple):
    """One block the engine decided to fetch ahead of demand.

    The sequence of these decisions *is* the observable behaviour of a
    policy + cost-benefit configuration: the service layer streams them to
    clients, and the determinism-parity tests compare them between an
    offline run and an online session.
    """

    block: Block
    probability: float
    depth: int
    tag: str


class StepResult(NamedTuple):
    """What one access period did, as seen from outside the engine.

    Returned by :meth:`Simulator.step` so callers that drive the engine one
    reference at a time (the online :mod:`repro.service` session) can relay
    the outcome without reaching into engine internals.
    """

    block: Block
    period: int
    location: "Location"
    stall_ms: float
    decisions: Tuple[PrefetchDecision, ...]

    @property
    def outcome(self) -> str:
        """``demand_hit`` / ``prefetch_hit`` / ``miss`` (wire-level name)."""
        if self.location is Location.DEMAND:
            return "demand_hit"
        if self.location is Location.PREFETCH:
            return "prefetch_hit"
        return "miss"


class PrefetchContext:
    """Engine-side API handed to a policy during its prefetch round."""

    __slots__ = ("_engine", "issued")

    def __init__(self, engine: "Simulator") -> None:
        self._engine = engine
        self.issued = 0

    @property
    def s(self) -> float:
        """Current smoothed prefetches-per-period estimate."""
        return self._engine.s

    @property
    def params(self) -> SystemParams:
        return self._engine.params

    @property
    def prefetch_horizon(self) -> int:
        return costbenefit.prefetch_horizon(self._engine.params, self._engine.s)

    def is_cached(self, block: Block) -> bool:
        return self._engine.cache.location_of(block) is not Location.MISS

    def try_issue(
        self,
        block: Block,
        p_b: float,
        p_x: float,
        depth: int,
        *,
        forced: bool = False,
        tag: str = "tree",
    ) -> IssueStatus:
        """Propose prefetching ``block`` at probability ``p_b``, depth ``depth``.

        Applies Section 7: computes ``B(b) - T_oh`` and compares it against
        the cheapest buffer's eviction cost; ``forced`` skips the benefit
        gate (the block is fetched if any buffer is reclaimable within the
        partition bound), which is how next-limit behaves.
        """
        return self._engine._try_issue(block, p_b, p_x, depth, forced, tag, self)


class Simulator:
    """Runs one prefetching policy over a block reference trace."""

    def __init__(
        self,
        params: SystemParams,
        policy: "Policy",
        cache_size: int,
        *,
        s_alpha: float = 0.05,
        s_initial: float = 1.0,
        max_prefetches_per_period: int = 64,
        refetch_distance: Optional[int] = None,
        marginal_band: int = 8,
        num_disks: Optional[int] = None,
        record_decisions: bool = False,
    ) -> None:
        """``num_disks=None`` keeps the paper's infinite-disk assumption;
        an integer uses the FCFS :class:`QueuedDiskModel` instead."""
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size!r}")
        if max_prefetches_per_period < 1:
            raise ValueError(
                "max_prefetches_per_period must be >= 1, "
                f"got {max_prefetches_per_period!r}"
            )
        self.params = params
        self.policy = policy
        self.cache_size = cache_size
        cap = policy.prefetch_partition_capacity(cache_size)
        self.cache = BufferCache(
            params,
            cache_size,
            prefetch_capacity=cap if cap is not None else cache_size,
            refetch_distance=refetch_distance,
            marginal_band=marginal_band,
        )
        self.clock = SimClock()
        self.disk = (
            DiskModel(params) if num_disks is None
            else QueuedDiskModel(params, num_disks)
        )
        self.stats = SimulationStats()
        self._s_estimator = PrefetchRateEstimator(alpha=s_alpha, initial=s_initial)
        self.max_prefetches_per_period = max_prefetches_per_period
        self.period = 0
        self.next_block: Optional[Block] = None
        """One-access lookahead, available only to oracle policies."""
        self.full_trace: Optional[Sequence[Block]] = None
        """The materialised trace, published at run start (hint policies)."""
        self.record_decisions = record_decisions
        self.decision_log: List[PrefetchDecision] = []
        """Every prefetch decision of the run, when ``record_decisions``."""
        self._step_decisions: List[PrefetchDecision] = []
        policy.setup(self)

    # ------------------------------------------------------------- queries

    @property
    def s(self) -> float:
        return self._s_estimator.s

    @property
    def s_lifetime_mean(self) -> float:
        return self._s_estimator.lifetime_mean

    # ----------------------------------------------------------------- run

    def run(self, trace: Iterable[Block]) -> SimulationStats:
        """Simulate the whole trace and return the accumulated statistics."""
        blocks: Sequence[Block] = (
            trace if isinstance(trace, (list, tuple)) else list(trace)
        )
        self.full_trace = blocks
        self.policy.on_run_start(blocks)
        n = len(blocks)
        for i in range(n):
            self.next_block = blocks[i + 1] if i + 1 < n else None
            self.step(blocks[i])
        return self.finalize()

    def step(self, block: Block) -> StepResult:
        """Simulate one access period and report what it did.

        This is the engine's session-reusable core: it needs no lookahead
        and no materialised trace, so a long-lived caller (the online
        advisory service) can feed references one at a time and stream the
        returned :class:`StepResult` back to its client.
        """
        # Read the profiling guard once per step: disabled cost is this
        # one attribute load; the timers never feed back into decisions.
        prof = _profile.ENABLED
        t_step = perf_counter() if prof else 0.0

        self.period += 1
        stats = self.stats
        params = self.params
        stats.accesses += 1
        stall = 0.0

        location = self.cache.location_of(block)
        if prof:
            t0 = perf_counter()
            self.policy.observe(
                block, self.period, location, self.cache, stats
            )
            _profile.add("engine.tree_walk", perf_counter() - t0)
        else:
            self.policy.observe(
                block, self.period, location, self.cache, stats
            )

        result = self.cache.reference(block, self.period)
        if result.location is Location.DEMAND:
            stats.demand_hits += 1
            self.clock.charge_hit(params.t_hit)
        elif result.location is Location.PREFETCH:
            stats.prefetch_hits += 1
            assert result.entry is not None
            stall = max(0.0, result.entry.arrival_time - self.clock.now)
            if stall > 0.0:
                self.clock.charge_stall(stall)
            self.clock.charge_hit(params.t_hit)
        else:
            stats.misses += 1
            self.cache.reclaim_for_demand(self.period, self.s)
            self.clock.charge_driver(params.t_driver)
            completion = self.disk.demand_read(self.clock.now)
            self.clock.charge_demand_fetch(completion - self.clock.now)
            self.cache.insert_demand(block)
            self.clock.charge_hit(params.t_hit)

        self._step_decisions = []
        ctx = PrefetchContext(self)
        if prof:
            t0 = perf_counter()
            self.policy.prefetch_round(ctx)
            _profile.add("engine.candidate_selection", perf_counter() - t0)
        else:
            self.policy.prefetch_round(ctx)
        self._s_estimator.end_period(ctx.issued)
        self.clock.charge_compute(params.t_cpu)
        step_result = StepResult(
            block=block,
            period=self.period,
            location=result.location,
            stall_ms=stall,
            decisions=tuple(self._step_decisions),
        )
        if prof:
            _profile.add("engine.step", perf_counter() - t_step)
        return step_result

    def finalize(self) -> SimulationStats:
        """Seal and validate the statistics after the last access."""
        stats = self.stats
        stats.prefetched_evicted_unreferenced = self.cache.prefetch.evicted_unreferenced
        stats.elapsed_time = self.clock.now
        stats.stall_time = self.clock.stall_time
        stats.demand_fetch_time = self.clock.demand_fetch_time
        stats.driver_time = self.clock.driver_time
        stats.extra.setdefault("policy", self.policy.name)
        stats.extra.setdefault("cache_size", self.cache_size)
        stats.extra.setdefault("s_lifetime_mean", self.s_lifetime_mean)
        stats.extra.setdefault(
            "forced_prefetch_evictions", self.cache.forced_prefetch_evictions
        )
        if isinstance(self.disk, QueuedDiskModel):
            stats.extra.setdefault("num_disks", self.disk.num_disks)
            stats.extra.setdefault(
                "disk_queue_delay_total", self.disk.queue_delay_total
            )
            stats.extra.setdefault("disk_queued_requests", self.disk.queued_requests)
            stats.extra.setdefault(
                "disk_utilisation", self.disk.utilisation(self.clock.now)
            )
        self.policy.snapshot_extra(stats)
        stats.check_conservation()
        return stats

    # ----------------------------------------------------- prefetch issuing

    def _try_issue(
        self,
        block: Block,
        p_b: float,
        p_x: float,
        depth: int,
        forced: bool,
        tag: str,
        ctx: PrefetchContext,
    ) -> IssueStatus:
        stats = self.stats
        if ctx.issued >= self.max_prefetches_per_period:
            return IssueStatus.NO_CAPACITY

        location = self.cache.location_of(block)
        if location is not Location.MISS:
            # Figure 7's "candidate already resides in the cache".  Keep the
            # resident prefetch entry's metadata fresh so Eq. 11 stays honest.
            if location is Location.PREFETCH and not forced:
                self.cache.prefetch.refresh(block, p_b, depth, self.period)
            stats.candidates_already_cached += 1
            return IssueStatus.ALREADY_CACHED

        s = self.s
        if forced:
            # Unconditional one-block lookahead: pay for a buffer if any is
            # reclaimable, with no benefit ceiling.
            max_cost = costbenefit.INFINITE_COST
        else:
            net = costbenefit.benefit(self.params, p_b, p_x, depth, s) - (
                costbenefit.prefetch_overhead(self.params, p_b, p_x)
            )
            if net <= 0.0:
                stats.candidates_rejected_cost += 1
                return IssueStatus.REJECTED_COST
            max_cost = net

        was_capped = self.cache.prefetch.is_full
        paid = self.cache.try_reclaim_for_prefetch(self.period, s, max_cost)
        if paid is None:
            if was_capped:
                stats.candidates_no_capacity += 1
                return IssueStatus.NO_CAPACITY
            stats.candidates_rejected_cost += 1
            return IssueStatus.REJECTED_COST

        self.clock.charge_driver(self.params.t_driver)
        arrival = self.disk.prefetch_read(self.clock.now)
        self.cache.insert_prefetch(
            PrefetchEntry(
                block=block,
                probability=p_b,
                depth=depth,
                issue_period=self.period,
                arrival_time=arrival,
                tag=tag,
            )
        )
        ctx.issued += 1
        stats.prefetches_issued += 1
        stats.prefetch_probability_sum += p_b
        stats.prefetch_depth_sum += depth
        decision = PrefetchDecision(block, p_b, depth, tag)
        self._step_decisions.append(decision)
        if self.record_decisions:
            self.decision_log.append(decision)
        return IssueStatus.ISSUED


def simulate(
    params: SystemParams,
    policy: "Policy",
    trace: Iterable[Block],
    cache_size: int,
    **kwargs,
) -> SimulationStats:
    """Convenience one-shot: build a :class:`Simulator` and run the trace."""
    return Simulator(params, policy, cache_size, **kwargs).run(trace)
