"""Disk models: the paper's infinite-parallelism disk, and a finite one.

The paper assumes "many disk drives and, therefore, no disk congestion"
(Sections 3 and 6.3): every request completes exactly ``T_disk`` after
issue, any number in flight.  :class:`DiskModel` implements that.

Section 6.3 explicitly flags the ignored overhead: "disks spending time
fetching blocks that are never accessed".  :class:`QueuedDiskModel` lets
the repository *measure* what that assumption hides: ``num_disks`` drives
serve requests first-come-first-served (each request binds to the earliest
available drive), so aggressive prefetching can congest the disks and delay
demand fetches.  The ablation bench ``bench_disk_congestion.py`` sweeps the
drive count.

Demand fetches are synchronous (the CPU waits for the returned completion
time); prefetches are asynchronous and the engine compares a block's
``arrival_time`` against the clock at first reference to derive the stall,
reproducing the Figure 5 timelines.
"""

from __future__ import annotations

import heapq
from typing import Hashable, List

from repro.params import SystemParams

Block = Hashable


class DiskModel:
    """Constant-latency disk with unlimited parallelism (the paper's model)."""

    __slots__ = ("params", "demand_reads", "prefetch_reads")

    def __init__(self, params: SystemParams) -> None:
        self.params = params
        self.demand_reads = 0
        self.prefetch_reads = 0

    def demand_read(self, now: float) -> float:
        """Issue a synchronous read; returns its completion time.

        The driver overhead is charged by the caller (it is CPU time); the
        disk contributes exactly ``T_disk``.
        """
        self.demand_reads += 1
        return now + self.params.t_disk

    def prefetch_read(self, issue_time: float) -> float:
        """Issue an asynchronous read; returns the block's arrival time.

        ``issue_time`` is the clock after the driver overhead was charged;
        with unlimited drives the access starts immediately.
        """
        self.prefetch_reads += 1
        return issue_time + self.params.t_disk

    @property
    def total_reads(self) -> int:
        return self.demand_reads + self.prefetch_reads

    @property
    def busy_time(self) -> float:
        """Aggregate drive-seconds spent reading."""
        return self.total_reads * self.params.t_disk


class QueuedDiskModel(DiskModel):
    """``num_disks`` drives, FCFS; requests queue when all drives are busy.

    Service discipline: a request starts on the drive that frees up
    earliest (no request reordering, no priority for demand fetches - the
    pessimistic case for prefetch-induced congestion, since a speculative
    read issued just before a demand miss delays it by a full ``T_disk``).
    """

    __slots__ = ("num_disks", "_free_at", "queue_delay_total", "queued_requests")

    def __init__(self, params: SystemParams, num_disks: int) -> None:
        if num_disks < 1:
            raise ValueError(f"num_disks must be >= 1, got {num_disks!r}")
        super().__init__(params)
        self.num_disks = num_disks
        self._free_at: List[float] = [0.0] * num_disks
        heapq.heapify(self._free_at)
        self.queue_delay_total = 0.0
        self.queued_requests = 0

    def _serve(self, now: float) -> float:
        earliest = heapq.heappop(self._free_at)
        start = earliest if earliest > now else now
        if start > now:
            self.queue_delay_total += start - now
            self.queued_requests += 1
        completion = start + self.params.t_disk
        heapq.heappush(self._free_at, completion)
        return completion

    def demand_read(self, now: float) -> float:
        self.demand_reads += 1
        return self._serve(now)

    def prefetch_read(self, issue_time: float) -> float:
        self.prefetch_reads += 1
        return self._serve(issue_time)

    def utilisation(self, elapsed: float) -> float:
        """Mean fraction of drive time spent serving, over ``elapsed`` ms."""
        if elapsed <= 0.0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.num_disks))
