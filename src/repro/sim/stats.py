"""Per-run statistics for the trace-driven simulator.

Every metric reported in the paper's Section 9 is accumulated here:

* combined-cache **miss rate** (Figures 6, 13, 15, 17; Table 4),
* **prefetch-cache hit rate** -- prefetched blocks referenced before being
  evicted (Figures 9 and 12),
* **prefetches per access period**, lifetime average ``s`` (Figures 8, 11),
* **average probability of prefetched blocks** (Figure 10),
* fraction of chosen prefetch candidates **already cached** (Figure 7),
* **prediction accuracy** -- accesses predictable from the tree (Table 2),
* predictable accesses **not already cached** (Figure 14),
* **last-visited-child** repeat rate and cached rate (Table 3, Figure 16),
* timing: elapsed simulated time, stall time, per-access mean,
* disk traffic: demand fetches plus prefetch fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping


@dataclass
class SimulationStats:
    """Counters accumulated over one simulation run."""

    # --- reference stream -------------------------------------------------
    accesses: int = 0
    demand_hits: int = 0
    prefetch_hits: int = 0
    misses: int = 0

    # --- prefetching ------------------------------------------------------
    prefetches_issued: int = 0
    prefetch_probability_sum: float = 0.0
    prefetch_depth_sum: int = 0
    candidates_already_cached: int = 0
    candidates_rejected_cost: int = 0
    candidates_no_capacity: int = 0
    prefetched_evicted_unreferenced: int = 0

    # --- tree-derived (zero for tree-less policies) ------------------------
    predictable_accesses: int = 0
    predictable_uncached: int = 0
    lvc_opportunities: int = 0
    lvc_repeats: int = 0
    lvc_opportunities_nonroot: int = 0
    lvc_repeats_nonroot: int = 0
    lvc_cached: int = 0

    # --- timing (milliseconds) ---------------------------------------------
    elapsed_time: float = 0.0
    stall_time: float = 0.0
    demand_fetch_time: float = 0.0
    driver_time: float = 0.0

    # --- free-form extras (policy knobs, tree size, ...) -------------------
    extra: Dict[str, Any] = field(default_factory=dict)

    # ---------------------------------------------------------------- rates

    @property
    def hits(self) -> int:
        return self.demand_hits + self.prefetch_hits

    @property
    def miss_rate(self) -> float:
        """Miss rate of the combined demand + prefetch cache (per cent)."""
        if self.accesses == 0:
            return 0.0
        return 100.0 * self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 100.0 * self.hits / self.accesses

    @property
    def prefetch_cache_hit_rate(self) -> float:
        """Per cent of prefetched blocks that were referenced (Figure 9).

        Resolved = referenced (hits) + evicted unreferenced; blocks still
        resident at end of run are not counted either way.
        """
        resolved = self.prefetch_hits + self.prefetched_evicted_unreferenced
        if resolved == 0:
            return 0.0
        return 100.0 * self.prefetch_hits / resolved

    @property
    def prefetches_per_period(self) -> float:
        """Lifetime mean blocks prefetched per access period (Figure 8)."""
        if self.accesses == 0:
            return 0.0
        return self.prefetches_issued / self.accesses

    @property
    def mean_prefetched_probability(self) -> float:
        """Average ``p_b`` over issued prefetches (Figure 10)."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_probability_sum / self.prefetches_issued

    @property
    def mean_prefetched_depth(self) -> float:
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_depth_sum / self.prefetches_issued

    @property
    def candidates_already_cached_rate(self) -> float:
        """Per cent of cost-benefit-approved candidates found cached (Fig 7)."""
        total = self.candidates_already_cached + self.prefetches_issued
        if total == 0:
            return 0.0
        return 100.0 * self.candidates_already_cached / total

    @property
    def prediction_accuracy(self) -> float:
        """Per cent of accesses predictable from the tree (Table 2)."""
        if self.accesses == 0:
            return 0.0
        return 100.0 * self.predictable_accesses / self.accesses

    @property
    def predictable_uncached_rate(self) -> float:
        """Per cent of predictable accesses not already cached (Figure 14)."""
        if self.predictable_accesses == 0:
            return 0.0
        return 100.0 * self.predictable_uncached / self.predictable_accesses

    @property
    def lvc_repeat_rate(self) -> float:
        """Per cent of visits repeating the last visited child (Table 3)."""
        if self.lvc_opportunities == 0:
            return 0.0
        return 100.0 * self.lvc_repeats / self.lvc_opportunities

    @property
    def lvc_repeat_rate_nonroot(self) -> float:
        """Table 3's repeat rate over non-root nodes only (see TreeStats)."""
        if self.lvc_opportunities_nonroot == 0:
            return 0.0
        return 100.0 * self.lvc_repeats_nonroot / self.lvc_opportunities_nonroot

    @property
    def lvc_cached_rate(self) -> float:
        """Per cent of last-visited children already cached (Figure 16)."""
        if self.lvc_opportunities == 0:
            return 0.0
        return 100.0 * self.lvc_cached / self.lvc_opportunities

    @property
    def disk_fetches(self) -> int:
        """Total disk reads: demand fetches plus prefetches (traffic)."""
        return self.misses + self.prefetches_issued

    @property
    def traffic_increase(self) -> float:
        """Per cent extra disk traffic caused by prefetching (Section 9.2.1)."""
        if self.misses == 0:
            return 0.0
        return 100.0 * self.prefetches_issued / self.misses

    @property
    def mean_access_time(self) -> float:
        """Average simulated time per access (ms)."""
        if self.accesses == 0:
            return 0.0
        return self.elapsed_time / self.accesses

    # -------------------------------------------------------------- export

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict of counters and derived rates, for reports and tests."""
        return {
            "accesses": self.accesses,
            "demand_hits": self.demand_hits,
            "prefetch_hits": self.prefetch_hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "prefetch_cache_hit_rate": self.prefetch_cache_hit_rate,
            "prefetches_issued": self.prefetches_issued,
            "prefetches_per_period": self.prefetches_per_period,
            "mean_prefetched_probability": self.mean_prefetched_probability,
            "mean_prefetched_depth": self.mean_prefetched_depth,
            "candidates_already_cached_rate": self.candidates_already_cached_rate,
            "prediction_accuracy": self.prediction_accuracy,
            "predictable_uncached_rate": self.predictable_uncached_rate,
            "lvc_repeat_rate": self.lvc_repeat_rate,
            "lvc_repeat_rate_nonroot": self.lvc_repeat_rate_nonroot,
            "lvc_cached_rate": self.lvc_cached_rate,
            "disk_fetches": self.disk_fetches,
            "traffic_increase": self.traffic_increase,
            "elapsed_time": self.elapsed_time,
            "stall_time": self.stall_time,
            "mean_access_time": self.mean_access_time,
            "extra": dict(self.extra),
        }

    def to_record(self) -> Dict[str, Any]:
        """Lossless plain-dict form: raw counters only, no derived rates.

        Unlike :meth:`as_dict` (a reporting view that mixes in computed
        properties), this is the serialization format — JSON-encoding the
        record and feeding it back through :meth:`from_record` must
        reconstruct an equal instance.
        """
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["extra"] = dict(self.extra)
        return out

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "SimulationStats":
        """Rebuild stats from :meth:`to_record` output.

        Unknown keys fail loudly — a record that does not match this
        build's fields is stale or corrupt, and silently dropping data
        would defeat the result cache's integrity story.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(record) - known)
        if unknown:
            raise ValueError(
                f"SimulationStats record has unknown fields: {unknown}"
            )
        payload = dict(record)
        payload["extra"] = dict(payload.get("extra") or {})
        return cls(**payload)

    def check_conservation(self) -> None:
        """Assert the bookkeeping identities the engine must maintain."""
        assert self.demand_hits + self.prefetch_hits + self.misses == self.accesses
        assert self.prefetch_hits + self.prefetched_evicted_unreferenced <= (
            self.prefetches_issued
        )
        assert self.predictable_accesses <= self.accesses
        assert self.lvc_repeats <= self.lvc_opportunities
