"""Simulated wall clock for the uniprocessor timeline (Figures 3 and 5).

The clock advances only through the named charge methods so the engine's
time accounting is auditable: every millisecond of simulated time is
attributed to computation, cache reads, driver overhead, demand fetches, or
prefetch stalls, and the per-category totals are mirrored into the run's
:class:`~repro.sim.stats.SimulationStats`.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in milliseconds."""

    __slots__ = ("now", "compute_time", "hit_time", "driver_time",
                 "demand_fetch_time", "stall_time")

    def __init__(self) -> None:
        self.now = 0.0
        self.compute_time = 0.0
        self.hit_time = 0.0
        self.driver_time = 0.0
        self.demand_fetch_time = 0.0
        self.stall_time = 0.0

    def charge_compute(self, duration: float) -> None:
        """Application computation between I/Os (``T_cpu``)."""
        self._advance(duration)
        self.compute_time += duration

    def charge_hit(self, duration: float) -> None:
        """Buffer-cache read (``T_hit``)."""
        self._advance(duration)
        self.hit_time += duration

    def charge_driver(self, duration: float) -> None:
        """Device-driver overhead for initiating a fetch (``T_driver``)."""
        self._advance(duration)
        self.driver_time += duration

    def charge_demand_fetch(self, duration: float) -> None:
        """Synchronous demand fetch: the CPU idles for the disk access."""
        self._advance(duration)
        self.demand_fetch_time += duration

    def charge_stall(self, duration: float) -> None:
        """CPU stall waiting for an in-flight prefetch to land (Figure 5)."""
        self._advance(duration)
        self.stall_time += duration

    def _advance(self, duration: float) -> None:
        if duration < 0.0:
            raise ValueError(f"cannot advance time by {duration!r} ms")
        self.now += duration
