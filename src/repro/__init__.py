"""repro: reproduction of "A Cost-Benefit Scheme for High Performance
Predictive Prefetching" (Vellanki & Chervenak, SC 1999).

Quickstart::

    from repro import PAPER_PARAMS, make_policy, make_trace, simulate

    trace = make_trace("cad", num_references=50_000)
    stats = simulate(PAPER_PARAMS, make_policy("tree"), trace.as_list(), 1024)
    print(f"miss rate: {stats.miss_rate:.1f}%")

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.core` - the LZ prefetch tree and the cost-benefit equations;
* :mod:`repro.cache` - LRU demand cache, prefetch cache, combined pool;
* :mod:`repro.policies` - the eight schemes compared in the paper;
* :mod:`repro.sim` - the trace-driven simulation engine;
* :mod:`repro.traces` - trace container/IO and the synthetic workloads;
* :mod:`repro.analysis` - sweeps and per-figure experiment harnesses.
"""

from repro.core import PrefetchTree, best_candidates, prefetch_horizon
from repro.params import PAPER_PARAMS, SystemParams
from repro.policies import Policy, make_policy, policy_names
from repro.sim import SimulationStats, Simulator, simulate
from repro.traces import TRACE_NAMES, Trace, make_paper_suite, make_trace

__version__ = "1.0.0"

__all__ = [
    "PAPER_PARAMS",
    "Policy",
    "PrefetchTree",
    "SimulationStats",
    "Simulator",
    "SystemParams",
    "TRACE_NAMES",
    "Trace",
    "__version__",
    "best_candidates",
    "make_paper_suite",
    "make_policy",
    "make_trace",
    "policy_names",
    "prefetch_horizon",
    "simulate",
]
