"""Multi-tenant model serving: shared bases, per-session deltas, budgets.

One trained prefetch model (a *base*) is loaded once per worker process and
shared read-only by every session of the owning tenant; sessions observe
accesses through copy-on-write :class:`~repro.tenancy.overlay.OverlayTree`
views whose advice is bit-identical to a private copy of the same model.
The :class:`~repro.tenancy.manager.TenancyManager` accounts model bytes
per tenant and per worker, evicts idle sessions to checkpoints under
memory pressure, and enforces tenant quotas; the gateway layers admission
control on top (see ``docs/SERVICE.md``).
"""

from repro.tenancy.config import TenancyConfig, TenancyConfigError, TenantSpec
from repro.tenancy.manager import TenancyManager, TenantState
from repro.tenancy.memory import rss_bytes
from repro.tenancy.overlay import (
    DELTA_MODEL_KIND,
    OverlayError,
    OverlayTree,
    fold_overlays,
)

__all__ = [
    "DELTA_MODEL_KIND",
    "OverlayError",
    "OverlayTree",
    "TenancyConfig",
    "TenancyConfigError",
    "TenancyManager",
    "TenantSpec",
    "TenantState",
    "fold_overlays",
    "rss_bytes",
]
