"""Process-memory probes shared by the service and the benchmarks.

The eviction loop and the scaling/multitenancy benchmarks all want the
same number: resident set size of a (possibly other) process.  Linux
exposes it in ``/proc/<pid>/status``; elsewhere we fall back to
``resource.getrusage`` for the current process (peak, not current — close
enough for trend reporting, and clearly better than nothing).
"""

from __future__ import annotations

import os
import sys
from typing import Optional


def rss_bytes(pid: Optional[int] = None) -> int:
    """Resident set size of ``pid`` (default: this process), in bytes.

    Returns 0 when the platform offers no probe for the requested process
    (e.g. another pid on a non-Linux host) — callers treat 0 as
    "unavailable", never as "no memory".
    """
    target = os.getpid() if pid is None else pid
    try:
        with open(f"/proc/{target}/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    if pid is None or pid == os.getpid():
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF)
            scale = 1024 if sys.platform != "darwin" else 1
            return int(usage.ru_maxrss) * scale
        except (ImportError, ValueError):
            pass
    return 0
