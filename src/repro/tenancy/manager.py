"""Worker-side tenancy: shared bases, session binding, byte accounting.

One :class:`TenancyManager` lives inside each serving worker.  It

* loads each tenant's base model **once** (mmap-read from the model
  registry) and hands every session of that tenant a copy-on-write
  :class:`~repro.tenancy.overlay.OverlayTree` over the shared instance;
* tracks which live session belongs to which tenant and converts model
  sizes into the paper's bytes-per-node accounting (base counted once per
  tenant, sessions charged only their private delta);
* enforces the worker-side slice of per-tenant quotas at OPEN time
  (:meth:`TenancyManager.admit`) — the gateway enforces the same quotas
  fleet-wide before placement;
* rebinds resumed sessions to their shared base: its
  :meth:`~TenancyManager.model_factory` is passed to
  :func:`repro.store.session_state.restore_session` so a ``tree-delta``
  model state restores onto a fresh overlay of the right base.

Bases whose snapshot carries a node budget (``max_nodes``) cannot be
shared (LRU eviction would mutate shared state); those tenants fall back
to private per-session copies restored from the cached snapshot state —
correct, just without the memory sharing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.core.tree import PAPER_NODE_BYTES, PrefetchTree
from repro.store.codec import KIND_BASE, KIND_MODEL, SnapshotError
from repro.store.models import extract_model_state
from repro.store.registry import ModelStore
from repro.tenancy.config import TenancyConfig, TenancyConfigError, TenantSpec
from repro.tenancy.overlay import DELTA_MODEL_KIND, OverlayTree

TREE_MODEL_KIND = PrefetchTree.snapshot_kind


class UnknownTenantError(Exception):
    """OPEN named a tenant the config does not know (not retryable)."""


class TenantQuotaError(Exception):
    """A tenant quota would be exceeded; carries the client's backoff hint."""

    def __init__(self, tenant: str, reason: str, retry_after_s: float) -> None:
        super().__init__(f"tenant {tenant!r}: {reason}")
        self.tenant = tenant
        self.reason = reason
        self.retry_after_s = retry_after_s


class TenantState:
    """Per-tenant runtime state: the loaded base and live-session binding."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.base_tree: Optional[PrefetchTree] = None
        self.base_ref: Dict[str, Any] = {}
        self.base_items = 0
        #: Snapshot (meta, items) kept only for budgeted bases, which fall
        #: back to private per-session copies.
        self.private_state: Optional[Tuple[Dict[str, Any], list]] = None
        self.session_ids: set = set()

    @property
    def loaded(self) -> bool:
        return self.base_tree is not None or self.private_state is not None

    def base_bytes(self) -> int:
        """Accounted bytes of the shared base (0 until loaded, 0 for
        private-fallback tenants — their sessions carry the full cost)."""
        if self.base_tree is None:
            return 0
        return self.base_items * PAPER_NODE_BYTES


class TenancyManager:
    """Binds tenants to shared base models inside one worker."""

    def __init__(self, store: ModelStore, config: TenancyConfig) -> None:
        self.store = store
        self.config = config
        self._tenants: Dict[str, TenantState] = {
            name: TenantState(spec) for name, spec in config.tenants.items()
        }
        self._session_tenant: Dict[str, str] = {}

    # ------------------------------------------------------------- lookup

    def spec(self, tenant: str) -> TenantSpec:
        state = self._tenants.get(tenant)
        if state is None:
            known = ", ".join(sorted(self._tenants)) or "(none)"
            raise UnknownTenantError(
                f"unknown tenant {tenant!r} (configured: {known})"
            )
        return state.spec

    def tenant_of(self, session_id: str) -> Optional[str]:
        return self._session_tenant.get(session_id)

    # ------------------------------------------------------- base loading

    def _load_base(self, state: TenantState) -> None:
        name, version, path = self.store.resolve(state.spec.model)
        from repro.store.codec import read_snapshot_mmap

        snapshot = read_snapshot_mmap(path)
        if snapshot.kind not in (KIND_MODEL, KIND_BASE):
            raise TenancyConfigError(
                f"tenant {state.spec.name!r}: registry entry "
                f"{state.spec.model!r} holds a {snapshot.kind!r} snapshot, "
                "not a model"
            )
        kind, meta, items = extract_model_state(snapshot)
        if kind != TREE_MODEL_KIND:
            raise TenancyConfigError(
                f"tenant {state.spec.name!r}: base model kind {kind!r} does "
                f"not support shared serving (only {TREE_MODEL_KIND!r} does)"
            )
        state.base_ref = {
            "tenant": state.spec.name,
            "model": f"{name}@{version}",
        }
        if meta.get("max_nodes") is not None:
            # Budget-capped trees mutate shared LRU state; serve private
            # copies instead (correct, just not memory-shared).
            state.private_state = (meta, items)
            state.base_items = len(items)
            return
        tree = PrefetchTree()
        tree.restore_state(meta, items)
        state.base_tree = tree
        state.base_items = tree.memory_items()

    def base_for(self, tenant: str) -> TenantState:
        """The tenant's state with its base loaded (loading it on first use)."""
        self.spec(tenant)  # raises UnknownTenantError
        state = self._tenants[tenant]
        if not state.loaded:
            self._load_base(state)
        return state

    # ---------------------------------------------------------- admission

    def admit(self, tenant: str) -> TenantSpec:
        """Check worker-side quotas for one OPEN; raises on breach."""
        spec = self.spec(tenant)
        state = self._tenants[tenant]
        if (
            spec.max_sessions is not None
            and len(state.session_ids) >= spec.max_sessions
        ):
            raise TenantQuotaError(
                tenant,
                f"session quota reached ({spec.max_sessions})",
                spec.retry_after_s,
            )
        if spec.max_model_bytes is not None and state.loaded:
            used = self.tenant_model_bytes(tenant)
            if used >= spec.max_model_bytes:
                raise TenantQuotaError(
                    tenant,
                    f"model-byte quota reached "
                    f"({used} >= {spec.max_model_bytes})",
                    spec.retry_after_s,
                )
        return spec

    # ------------------------------------------------------ model binding

    def make_model(self, tenant: str) -> PrefetchTree:
        """A fresh session model for ``tenant``: an overlay over the shared
        base, or a private warm copy for budget-capped bases."""
        state = self.base_for(tenant)
        if state.base_tree is not None:
            return OverlayTree(state.base_tree, base_ref=dict(state.base_ref))
        assert state.private_state is not None
        meta, items = state.private_state
        tree = PrefetchTree()
        tree.restore_state(meta, items)
        return tree

    def model_factory(self, kind: str, meta: Dict[str, Any]):
        """``restore_session`` hook: rebind delta snapshots to their base.

        Returns a fresh overlay for ``tree-delta`` states whose base ref
        names a tenant this manager serves; ``None`` (decline) otherwise.
        """
        if kind != DELTA_MODEL_KIND:
            return None
        ref = meta.get("base") or {}
        tenant = ref.get("tenant")
        if tenant is None or tenant not in self._tenants:
            return None
        state = self.base_for(tenant)
        if state.base_tree is None:
            raise SnapshotError(
                f"delta snapshot references tenant {tenant!r}, whose base "
                "is not shareable on this worker"
            )
        if ref.get("model") != state.base_ref.get("model"):
            raise SnapshotError(
                f"delta snapshot was taken against base "
                f"{ref.get('model')!r}; this worker serves "
                f"{state.base_ref.get('model')!r}"
            )
        return OverlayTree(state.base_tree, base_ref=dict(state.base_ref))

    # ----------------------------------------------------------- tracking

    def bind(self, session_id: str, tenant: str) -> None:
        self._session_tenant[session_id] = tenant
        self._tenants[tenant].session_ids.add(session_id)

    def unbind(self, session_id: str) -> None:
        tenant = self._session_tenant.pop(session_id, None)
        if tenant is not None:
            self._tenants[tenant].session_ids.discard(session_id)

    # --------------------------------------------------------- accounting

    def _session_items(self, session) -> int:
        model = session.simulator.policy.model()
        if model is None:
            return 0
        if isinstance(model, OverlayTree):
            return model.delta_items()
        return model.memory_items()

    def session_model_bytes(self, session) -> int:
        """One session's accounted bytes: its *private* model footprint."""
        return self._session_items(session) * PAPER_NODE_BYTES

    def base_bytes_total(self) -> int:
        """Accounted bytes of every *shared* base loaded on this worker."""
        return sum(state.base_bytes() for state in self._tenants.values())

    def tenant_model_bytes(
        self, tenant: str, sessions: Optional[Dict[str, Any]] = None
    ) -> int:
        """Accounted bytes for one tenant: shared base + live deltas.

        ``sessions`` maps live session ids to sessions (the server's
        table); without it only the base is counted.
        """
        state = self._tenants[tenant]
        total = state.base_bytes()
        if sessions is not None:
            for sid in state.session_ids:
                session = sessions.get(sid)
                if session is not None:
                    total += self.session_model_bytes(session)
        return total

    def gauges(self, sessions: Dict[str, Any]) -> Dict[str, Dict[str, int]]:
        """Per-tenant ``{sessions, model_bytes}`` for the STATS reply."""
        return {
            name: {
                "sessions": len(state.session_ids),
                "model_bytes": self.tenant_model_bytes(name, sessions),
            }
            for name, state in self._tenants.items()
            if state.session_ids or state.loaded
        }
