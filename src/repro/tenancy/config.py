"""Tenant configuration: who may open sessions, against which base model.

A tenancy config is a JSON document (``repro serve --tenant-config``,
``repro fleet --tenant-config``)::

    {
      "memory_budget_bytes": 268435456,
      "tenants": {
        "acme": {
          "model": "tree-cello@3",
          "policy": "tree",
          "max_sessions": 5000,
          "max_model_bytes": 67108864,
          "retry_after_s": 2.0
        },
        "umbrella": {"model": "tree-cad"}
      }
    }

Per tenant:

``model``
    Registry spec (``NAME[@VERSION]``) of the tenant's shared base model.
    Required.  Loaded once per worker and shared copy-on-write by every
    session the tenant opens.
``policy``
    Default policy for the tenant's sessions when an OPEN does not name
    one; optional (falls back to the server default).
``max_sessions``
    Quota on concurrently open sessions across the deployment (enforced
    at the gateway) and per worker (enforced worker-side).  ``null`` /
    absent = unlimited.
``max_model_bytes``
    Quota on the tenant's accounted model memory (paper bytes-per-node
    over base + per-session deltas).  ``null`` / absent = unlimited.
``retry_after_s``
    Hint returned with quota rejections so well-behaved clients back off;
    default 1.0.

Top level:

``memory_budget_bytes``
    Per-worker budget on total accounted model memory; when exceeded the
    server evicts idle sessions to checkpoints (see ``docs/SERVICE.md``).
    CLI flag ``--memory-budget-mb`` overrides it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class TenancyConfigError(Exception):
    """The tenancy config file is malformed or inconsistent."""


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's model binding and quotas."""

    name: str
    model: str
    policy: Optional[str] = None
    max_sessions: Optional[int] = None
    max_model_bytes: Optional[int] = None
    retry_after_s: float = 1.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "model": self.model,
            "policy": self.policy,
            "max_sessions": self.max_sessions,
            "max_model_bytes": self.max_model_bytes,
            "retry_after_s": self.retry_after_s,
        }


@dataclass(frozen=True)
class TenancyConfig:
    """Parsed tenancy configuration."""

    tenants: Dict[str, TenantSpec] = field(default_factory=dict)
    memory_budget_bytes: Optional[int] = None

    def spec(self, tenant: str) -> Optional[TenantSpec]:
        return self.tenants.get(tenant)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "memory_budget_bytes": self.memory_budget_bytes,
            "tenants": {
                name: spec.as_dict() for name, spec in self.tenants.items()
            },
        }


def _positive_int(raw: Any, what: str) -> Optional[int]:
    if raw is None:
        return None
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < 1:
        raise TenancyConfigError(f"{what} must be a positive integer or null")
    return raw


def parse_tenancy_config(doc: Any) -> TenancyConfig:
    """Validate a decoded JSON document into a :class:`TenancyConfig`."""
    if not isinstance(doc, dict):
        raise TenancyConfigError("tenancy config must be a JSON object")
    raw_tenants = doc.get("tenants")
    if not isinstance(raw_tenants, dict) or not raw_tenants:
        raise TenancyConfigError(
            "tenancy config needs a non-empty 'tenants' object"
        )
    tenants: Dict[str, TenantSpec] = {}
    for name, raw in raw_tenants.items():
        if not isinstance(raw, dict):
            raise TenancyConfigError(f"tenant {name!r} must be an object")
        model = raw.get("model")
        if not isinstance(model, str) or not model:
            raise TenancyConfigError(
                f"tenant {name!r} needs a 'model' registry spec"
            )
        retry_after = raw.get("retry_after_s", 1.0)
        if not isinstance(retry_after, (int, float)) or retry_after < 0:
            raise TenancyConfigError(
                f"tenant {name!r}: retry_after_s must be a number >= 0"
            )
        unknown = set(raw) - {
            "model", "policy", "max_sessions", "max_model_bytes",
            "retry_after_s",
        }
        if unknown:
            raise TenancyConfigError(
                f"tenant {name!r} has unknown keys: {sorted(unknown)}"
            )
        policy = raw.get("policy")
        if policy is not None and not isinstance(policy, str):
            raise TenancyConfigError(f"tenant {name!r}: policy must be a string")
        tenants[name] = TenantSpec(
            name=name,
            model=model,
            policy=policy,
            max_sessions=_positive_int(
                raw.get("max_sessions"), f"tenant {name!r}: max_sessions"
            ),
            max_model_bytes=_positive_int(
                raw.get("max_model_bytes"), f"tenant {name!r}: max_model_bytes"
            ),
            retry_after_s=float(retry_after),
        )
    return TenancyConfig(
        tenants=tenants,
        memory_budget_bytes=_positive_int(
            doc.get("memory_budget_bytes"), "memory_budget_bytes"
        ),
    )


def load_tenancy_config(path: str) -> TenancyConfig:
    """Read and validate a tenancy config file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise TenancyConfigError(f"cannot read tenancy config {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise TenancyConfigError(
            f"tenancy config {path} is not valid JSON: {exc}"
        )
    return parse_tenancy_config(doc)
