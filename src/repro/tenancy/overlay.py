"""Copy-on-write prefetch-tree overlays: one shared base, many sessions.

A worker serving thousands of sessions for one tenant should not hold
thousands of copies of the tenant's trained prefetch tree.  An
:class:`OverlayTree` references a shared, read-only *base*
:class:`~repro.core.tree.PrefetchTree` and materialises private copies of
nodes only along the paths a session actually walks:

* **reads fall through** — candidate enumeration, predictability checks,
  and path probabilities consult the overlay's private nodes first and the
  base tree for everything the session has not touched;
* **writes copy** — the first traversal of a base edge copies that child
  into the overlay (weight, last-visited-child, heavy index, rebuild
  threshold) and all further mutation happens on the copy; brand-new
  parse substrings create overlay-only nodes;
* **the base never changes** — base node weights, children maps, and LRU
  state are frozen for the lifetime of the serving process, which is what
  makes sharing across sessions safe on one event loop.

Decision parity is the design constraint: a session running on an overlay
must produce **bit-identical advice** to a session whose policy restored a
private copy of the same base snapshot.  That pins several details:

* owned nodes copy ``weight``/``lvc``/``heavy``/``heavy_rebuild_at``
  verbatim at materialisation time, so probabilities and heavy-index
  membership match the private copy at every step;
* child enumeration yields base children in base insertion order
  (substituting owned copies) followed by overlay-new children in creation
  order — exactly the order a restored private tree observes (restored
  children first, created children appended);
* heavy-index rebuilds on *base* nodes are allowed: a base node's weight
  is frozen, so the rebuilt index is a deterministic, idempotent function
  of frozen state — every session (and a private copy) derives the same
  index in the same order.

The one divergence from a private tree is deliberate: overlays reject
``max_nodes`` budgets (LRU eviction would have to mutate shared state);
the tenancy manager falls back to private warm-starts for budgeted trees.

Overlays serialise as ``tree-delta`` model states carrying only the owned
subtree plus a reference to their base; :func:`fold_overlays` merges one
or more session deltas back into a full ``tree`` state for offline
promotion to a new base version.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.node import TreeNode
from repro.core.tree import (
    HEAVY_ACTIVATION,
    HEAVY_CHILD_DIVISOR,
    AccessOutcome,
    PrefetchTree,
    TreeStats,
)
from repro.store.codec import SnapshotError

Block = Hashable

#: Model kind carried by overlay snapshots (vs the base tree's ``tree``).
DELTA_MODEL_KIND = "tree-delta"


class OverlayError(Exception):
    """The base tree cannot back an overlay (e.g. it carries a node budget)."""


class OverlayTree(PrefetchTree):
    """A session-private copy-on-write view over a shared base tree.

    Parameters
    ----------
    base:
        The shared, fully-restored :class:`PrefetchTree`.  Must be
        unbudgeted (``max_nodes is None``) and is treated as immutable
        (only idempotent heavy-index rebuilds ever touch it).
    base_ref:
        Opaque JSON-able identification of the base (tenant name, registry
        spec) embedded in delta snapshots so resume can re-bind the right
        base and fail loudly on a mismatch.
    """

    snapshot_kind = DELTA_MODEL_KIND

    def __init__(
        self,
        base: PrefetchTree,
        *,
        base_ref: Optional[Dict[str, Any]] = None,
    ) -> None:
        if base.max_nodes is not None:
            raise OverlayError(
                "overlays require an unbudgeted base tree (max_nodes=None); "
                "LRU eviction would mutate shared state"
            )
        super().__init__(max_nodes=None)
        self.base = base
        self.base_ref: Dict[str, Any] = dict(base_ref or {})
        self._owned_count = 0
        self._reset_from_base()

    # ------------------------------------------------------------ plumbing

    def _reset_from_base(self) -> None:
        """(Re)initialise the overlay to a fresh view of the base."""
        base = self.base
        root = TreeNode(block=None, parent=None)
        root.weight = base.root.weight
        root.last_visited_child = base.root.last_visited_child
        root.heavy = None if base.root.heavy is None else dict(base.root.heavy)
        root.heavy_rebuild_at = base.root.heavy_rebuild_at
        root.base = base.root
        self.root = root
        self.current = root
        self.stats = TreeStats(**asdict(base.stats))
        self._node_count = base.node_count
        self._owned_count = 0
        # Mirror the base's parse position: materialise the root-to-current
        # path so the first accesses continue the parse exactly where the
        # base snapshot stopped — as a private restore would.
        cur = root
        for block in base.current.path_blocks():
            assert cur.base is not None
            cur = self._materialize(cur, block, cur.base.children[block])
        self.current = cur

    def _materialize(
        self, parent: TreeNode, block: Block, base_child: TreeNode
    ) -> TreeNode:
        """Copy one base child into the overlay under an owned parent."""
        node = TreeNode(block=block, parent=parent)
        node.weight = base_child.weight
        node.last_visited_child = base_child.last_visited_child
        node.heavy = (
            None if base_child.heavy is None else dict(base_child.heavy)
        )
        node.heavy_rebuild_at = base_child.heavy_rebuild_at
        node.base = base_child
        parent.children[block] = node
        # The owned parent's heavy index may still point at the base child;
        # swap in the copy so future weight bumps are seen by enumeration.
        if parent.heavy is not None and block in parent.heavy:
            parent.heavy[block] = node
        self._owned_count += 1
        return node

    def _iter_union(self, node: TreeNode):
        """Merged child view of an owned node shadowing a base node.

        Base children come first in base insertion order (owned copies
        substituted), then overlay-new children in creation order — the
        order a private restored tree would enumerate.
        """
        children = node.children
        assert node.base is not None
        bchildren = node.base.children
        for blk, bchild in bchildren.items():
            yield blk, children.get(blk, bchild)
        for blk, child in children.items():
            if blk not in bchildren:
                yield blk, child

    # ----------------------------------------------------------- recording

    def record_access(self, block: Block) -> AccessOutcome:
        """LZ parse step with copy-on-write materialisation.

        Mirrors :meth:`PrefetchTree.record_access` decision for decision;
        the only structural differences are the materialisation of base
        children on first traversal and the absence of LRU/budget work
        (overlays are unbudgeted by construction).
        """
        cur = self.current
        stats = self.stats
        stats.accesses += 1

        child = cur.children.get(block)
        if child is None and cur.base is not None:
            base_child = cur.base.children.get(block)
            if base_child is not None:
                child = self._materialize(cur, block, base_child)
        at_root = cur is self.root
        predictable = child is not None
        probability = (
            child.weight / cur.weight
            if (predictable and cur.weight > 0)
            else 0.0
        )
        lvc_available = cur.last_visited_child is not None
        lvc_repeat = lvc_available and cur.last_visited_child == block
        if predictable:
            stats.predictable += 1
        if lvc_available:
            stats.lvc_opportunities += 1
            if lvc_repeat:
                stats.lvc_repeats += 1
            if not at_root:
                stats.lvc_opportunities_nonroot += 1
                if lvc_repeat:
                    stats.lvc_repeats_nonroot += 1

        if at_root:
            self.root.weight += 1
            stats.substrings += 1

        created = False
        if child is not None:
            child.weight += 1
            heavy = cur.heavy
            if (
                heavy is not None
                and block not in heavy
                and child.weight * HEAVY_CHILD_DIVISOR >= cur.weight
            ):
                heavy[block] = child
            cur.last_visited_child = block
            self.current = child
        else:
            node = TreeNode(block=block, parent=cur)
            cur.children[block] = node
            if cur.heavy is not None and HEAVY_CHILD_DIVISOR >= cur.weight:
                cur.heavy[block] = node
            cur.last_visited_child = block
            self._node_count += 1
            self._owned_count += 1
            stats.nodes_created += 1
            self.current = self.root
            created = True

        return AccessOutcome(
            block=block,
            predictable=predictable,
            probability=probability,
            lvc_available=lvc_available,
            lvc_repeat=lvc_repeat,
            at_root=at_root,
            created_node=created,
        )

    # ------------------------------------------------------------- queries

    def delta_items(self) -> int:
        """Owned (session-private) non-root nodes: the session's marginal
        model footprint, what per-session memory accounting charges."""
        return self._owned_count

    def iter_relevant_children(self, node: TreeNode):
        """Overlay-aware relevant-children enumeration.

        Owned nodes that shadow a base node enumerate the merged child
        view; pure base nodes and overlay-new nodes have complete child
        maps and use the inherited logic unchanged (heavy rebuilds on
        frozen base nodes are deterministic and idempotent, hence safe to
        share).
        """
        if node.base is None:
            return super().iter_relevant_children(node)
        heavy = node.heavy
        if heavy is None:
            new_children = sum(
                1 for blk in node.children if blk not in node.base.children
            )
            if len(node.base.children) + new_children <= HEAVY_ACTIVATION:
                return list(self._iter_union(node))
        elif node.weight < node.heavy_rebuild_at:
            return heavy.items()
        rebuilt = {
            b: c
            for b, c in self._iter_union(node)
            if c.weight * HEAVY_CHILD_DIVISOR >= node.weight
        }
        node.heavy = rebuilt
        node.heavy_rebuild_at = max(2 * node.weight, 2)
        return rebuilt.items()

    def is_predictable(self, block: Block) -> bool:
        cur = self.current
        if block in cur.children:
            return True
        return cur.base is not None and block in cur.base.children

    def path_probability(self, blocks: List[Block]) -> float:
        node = self.current
        prob = 1.0
        for block in blocks:
            child = node.children.get(block)
            if child is None and node.base is not None:
                child = node.base.children.get(block)
            if child is None or node.weight <= 0:
                return 0.0
            prob *= child.weight / node.weight
            node = child
        return prob

    def iter_nodes(self) -> Iterator[TreeNode]:
        """All non-root nodes of the merged view, depth-first.

        Yields the owned copy where one exists, the base node otherwise.
        """
        stack: List[TreeNode] = [
            child for _, child in self._iter_union(self.root)
        ]
        while stack:
            node = stack.pop()
            yield node
            if node.base is not None:
                stack.extend(
                    child for _, child in self._iter_union(node)
                )
            else:
                stack.extend(node.children.values())

    # ----------------------------------------------------------- snapshots

    def snapshot_state(self) -> Tuple[Dict[str, Any], List[Any]]:
        """Serialise only the owned subtree (the session's delta).

        Same per-node record layout as the base tree's snapshot, but the
        id space covers owned nodes only and the meta carries the base
        reference plus the base's item count as a binding check.
        """
        ids: Dict[int, int] = {id(self.root): 0}
        records: List[Any] = []
        stack = list(reversed(list(self.root.children.values())))
        next_id = 1
        while stack:
            node = stack.pop()
            nid = next_id
            next_id += 1
            ids[id(node)] = nid
            assert node.parent is not None
            records.append([
                nid,
                ids[id(node.parent)],
                node.block,
                node.weight,
                node.last_visited_child,
                None if node.heavy is None else list(node.heavy.keys()),
                node.heavy_rebuild_at,
            ])
            stack.extend(reversed(list(node.children.values())))
        meta = {
            "base": dict(self.base_ref),
            "base_items": self.base.memory_items(),
            "root": {
                "weight": self.root.weight,
                "lvc": self.root.last_visited_child,
                "heavy": (None if self.root.heavy is None
                          else list(self.root.heavy.keys())),
                "rebuild_at": self.root.heavy_rebuild_at,
            },
            "current": ids[id(self.current)],
            "stats": asdict(self.stats),
        }
        return meta, records

    def restore_state(self, meta: Dict[str, Any], items: List[Any]) -> None:
        """Rebuild the overlay from a delta snapshot, onto ``self.base``.

        The caller (the tenancy manager's model factory) must have
        constructed this overlay over the same base the snapshot was taken
        against; ``base_items`` guards against a silently swapped base.
        """
        if meta.get("base_items") != self.base.memory_items():
            raise SnapshotError(
                f"delta snapshot was taken against a base with "
                f"{meta.get('base_items')!r} nodes; bound base has "
                f"{self.base.memory_items()} (base ref: {meta.get('base')!r})"
            )
        self._reset_from_base()
        # Discard the init-time path materialisation; the delta carries the
        # whole owned subtree, parse position included.
        self.root.children.clear()
        self._owned_count = 0
        self._node_count = self.base.node_count
        root_meta = meta["root"]
        self.root.weight = root_meta["weight"]
        self.root.last_visited_child = root_meta["lvc"]
        self.root.heavy_rebuild_at = root_meta["rebuild_at"]
        nodes: Dict[int, TreeNode] = {0: self.root}
        for nid, parent_id, block, weight, lvc, _heavy, rebuild_at in items:
            parent = nodes[parent_id]
            node = TreeNode(block=block, parent=parent)
            node.weight = weight
            node.last_visited_child = lvc
            node.heavy_rebuild_at = rebuild_at
            if parent.base is not None:
                node.base = parent.base.children.get(block)
            parent.children[block] = node
            nodes[nid] = node
            self._owned_count += 1
            if node.base is None:
                self._node_count += 1
        # Heavy keys resolve against the merged child view, so a second
        # pass once every owned child exists.
        def _resolve(owner: TreeNode, keys: List[Any]) -> Dict[Any, TreeNode]:
            resolved: Dict[Any, TreeNode] = {}
            for b in keys:
                child = owner.children.get(b)
                if child is None and owner.base is not None:
                    child = owner.base.children.get(b)
                if child is None:
                    raise SnapshotError(
                        f"delta heavy index references unknown child {b!r}"
                    )
                resolved[b] = child
            return resolved

        for nid, _parent_id, _block, _weight, _lvc, heavy, _rebuild in items:
            if heavy is not None:
                nodes[nid].heavy = _resolve(nodes[nid], heavy)
        if root_meta["heavy"] is not None:
            self.root.heavy = _resolve(self.root, root_meta["heavy"])
        else:
            self.root.heavy = None
        self.current = nodes[meta["current"]]
        self.stats = TreeStats(**meta["stats"])

    def check_invariants(self) -> None:
        """Overlay-specific structural invariants (the base-class LRU and
        count checks do not apply to a partial view)."""
        owned = 0
        new = 0
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            owned += 1
            assert node.parent is not None
            assert node.parent.children.get(node.block) is node
            assert node.parent.base is not None or node.base is None, (
                "owned node shadows a base child under a parent with no base"
            )
            if node.base is not None:
                assert node.base.block == node.block
                assert node.weight >= node.base.weight, (
                    f"overlay weight fell below base at {node!r}"
                )
            else:
                new += 1
            stack.extend(node.children.values())
        assert owned == self._owned_count, (owned, self._owned_count)
        assert self._node_count == self.base.node_count + new, (
            self._node_count, self.base.node_count, new
        )
        # The parse pointer must sit on an owned node (or the root copy).
        node: Optional[TreeNode] = self.current
        while node is not None and node is not self.root:
            node = node.parent
        assert node is self.root, "parse pointer escaped the owned subtree"


# ------------------------------------------------------------------- fold


def fold_overlays(
    base: PrefetchTree, overlays: Sequence[OverlayTree]
) -> PrefetchTree:
    """Merge session deltas back into a full private tree (offline).

    Weight increments are summed per node across overlays (each overlay's
    contribution is its owned weight minus the base weight); overlay-new
    subtrees are grafted after the base children, merged recursively when
    several overlays created the same substring.  Last-visited-child marks
    take the last overlay's value, and heavy indexes are dropped — the new
    base rebuilds them lazily, which is valid for a *new* model version
    (parity only binds within one base generation).  Recency (LRU order)
    is not represented in deltas, so the folded tree's LRU is preorder;
    folding is for promoting trained state, not for resuming budgeted
    parses.
    """
    for overlay in overlays:
        if overlay.base is not base:
            raise OverlayError(
                "fold_overlays requires every overlay to share the given "
                "base tree instance"
            )
    items: List[Any] = []
    next_id = [1]

    def emit(parent_id, block, weight, lvc) -> int:
        nid = next_id[0]
        next_id[0] += 1
        items.append([nid, parent_id, block, weight, lvc, None, 0])
        return nid

    def walk(
        parent_id: int,
        base_node: Optional[TreeNode],
        shadows: List[TreeNode],
    ) -> None:
        shadow_children = [s.children for s in shadows]
        if base_node is not None:
            for blk, bchild in base_node.children.items():
                group = [sc[blk] for sc in shadow_children if blk in sc]
                weight = bchild.weight + sum(
                    s.weight - bchild.weight for s in group
                )
                lvc = (
                    group[-1].last_visited_child
                    if group else bchild.last_visited_child
                )
                walk(emit(parent_id, blk, weight, lvc), bchild, group)
        seen = set()
        for sc in shadow_children:
            for blk in sc:
                if base_node is not None and blk in base_node.children:
                    continue
                if blk in seen:
                    continue
                seen.add(blk)
                group = [c[blk] for c in shadow_children if blk in c]
                weight = sum(g.weight for g in group)
                lvc = group[-1].last_visited_child
                walk(emit(parent_id, blk, weight, lvc), None, group)

    roots = [o.root for o in overlays]
    walk(0, base.root, roots)
    root_weight = base.root.weight + sum(
        o.root.weight - base.root.weight for o in overlays
    )
    stats = asdict(base.stats)
    for overlay in overlays:
        ostats = asdict(overlay.stats)
        bstats = asdict(base.stats)
        for key in stats:
            stats[key] += ostats[key] - bstats[key]
    lvc = roots[-1].last_visited_child if roots else base.root.last_visited_child
    meta = {
        "max_nodes": None,
        "root": {
            "weight": root_weight,
            "lvc": lvc,
            "heavy": None,
            "rebuild_at": 0,
        },
        "current": 0,
        "lru": [record[0] for record in items],
        "stats": stats,
    }
    folded = PrefetchTree()
    folded.restore_state(meta, items)
    return folded
