"""Parameter sweeps: the workhorse behind every figure.

Each paper figure is a sweep of one knob (cache size, T_cpu, tree node
budget, threshold probability, child count) with one simulation run per
point.  :class:`SweepResult` holds the grid of
:class:`~repro.sim.stats.SimulationStats` and extracts named metric series
for rendering or assertion.

Sweeps over *registered* policies and synthetic workloads should be
declared as :class:`~repro.analysis.scheduler.RunSpec` grids
(:func:`spec_grid`) and submitted to the
:class:`~repro.analysis.scheduler.Scheduler` — that is the single cached,
parallel execution path.  The ``*_sweep`` functions below remain as the
escape hatch for ad-hoc policy objects (custom factories, pre-attached
extent maps) that cannot be described by name + kwargs; they run
in-process and uncached.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.scheduler import RunSpec
from repro.params import SystemParams
from repro.sim.engine import Simulator
from repro.sim.stats import SimulationStats
from repro.traces.base import Trace

#: Cache sizes (in blocks) used for the paper's cache-size sweeps.
DEFAULT_CACHE_SIZES = (128, 256, 512, 1024, 2048, 4096)
#: T_cpu values (ms) of Section 9.2.3.
DEFAULT_TCPU_VALUES = (20.0, 40.0, 50.0, 80.0, 160.0, 320.0, 640.0)

PolicyFactory = Callable[[], Any]


def spec_grid(
    trace_names: Sequence[str],
    policy_names: Sequence[str],
    cache_sizes: Sequence[int],
    *,
    num_references: int = 50_000,
    seed: int = 1999,
    t_cpu: Optional[float] = None,
    t_disk: Optional[float] = None,
    t_driver: Optional[float] = None,
    t_hit: Optional[float] = None,
    policy_kwargs: Optional[Dict[str, Any]] = None,
    sim_kwargs: Optional[Dict[str, Any]] = None,
) -> List[RunSpec]:
    """The full trace x policy x cache-size cross product as specs.

    Row-major in argument order (trace outermost, cache size innermost),
    matching how the CLI and figure harnesses iterate their results.
    """
    return [
        RunSpec(
            trace_name=trace,
            policy_name=policy,
            cache_size=size,
            num_references=num_references,
            seed=seed,
            t_cpu=t_cpu,
            t_disk=t_disk,
            t_driver=t_driver,
            t_hit=t_hit,
            policy_kwargs=dict(policy_kwargs or {}),
            sim_kwargs=dict(sim_kwargs or {}),
        )
        for trace, policy, size in itertools.product(
            trace_names, policy_names, cache_sizes
        )
    ]


@dataclass
class SweepResult:
    """Stats for one policy across the sweep's x values."""

    x_name: str
    x_values: List[Any]
    runs: List[SimulationStats]
    label: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)

    def metric(self, name: str) -> List[float]:
        """Extract a metric series; ``name`` is a SimulationStats attribute
        (or property) or an ``extra`` key."""
        series: List[float] = []
        for stats in self.runs:
            if hasattr(stats, name):
                series.append(getattr(stats, name))
            elif name in stats.extra:
                series.append(stats.extra[name])
            else:
                raise KeyError(f"unknown metric {name!r}")
        return series

    def at(self, x: Any) -> SimulationStats:
        return self.runs[self.x_values.index(x)]


def cache_size_sweep(
    params: SystemParams,
    policy_factory: PolicyFactory,
    trace: Trace,
    *,
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
    label: str = "",
    sim_kwargs: Optional[Dict[str, Any]] = None,
) -> SweepResult:
    """One run per cache size (Figures 6-10, 14-17)."""
    blocks = trace.as_list()
    runs: List[SimulationStats] = []
    for size in cache_sizes:
        policy = policy_factory()
        sim = Simulator(params, policy, size, **(sim_kwargs or {}))
        runs.append(sim.run(blocks))
    return SweepResult(
        x_name="cache_blocks",
        x_values=list(cache_sizes),
        runs=runs,
        label=label or getattr(runs[0].extra, "get", lambda *_: "")("policy"),
        meta={"trace": trace.name, "references": len(blocks)},
    )


def tcpu_sweep(
    params: SystemParams,
    policy_factory: PolicyFactory,
    trace: Trace,
    *,
    cache_size: int = 1024,
    tcpu_values: Sequence[float] = DEFAULT_TCPU_VALUES,
    label: str = "",
    sim_kwargs: Optional[Dict[str, Any]] = None,
) -> SweepResult:
    """One run per T_cpu value at a fixed cache size (Figures 11-12)."""
    blocks = trace.as_list()
    runs: List[SimulationStats] = []
    for tcpu in tcpu_values:
        policy = policy_factory()
        sim = Simulator(
            params.with_t_cpu(tcpu), policy, cache_size, **(sim_kwargs or {})
        )
        runs.append(sim.run(blocks))
    return SweepResult(
        x_name="t_cpu_ms",
        x_values=list(tcpu_values),
        runs=runs,
        label=label,
        meta={"trace": trace.name, "cache_size": cache_size},
    )


def tree_nodes_sweep(
    params: SystemParams,
    policy_factory: Callable[[Optional[int]], Any],
    trace: Trace,
    *,
    cache_size: int = 1024,
    node_budgets: Sequence[Optional[int]] = (1024, 4096, 8192, 32768, 131072, None),
    label: str = "",
    sim_kwargs: Optional[Dict[str, Any]] = None,
) -> SweepResult:
    """One run per prefetch-tree node budget (Figure 13).

    ``policy_factory`` receives the budget (``None`` = unbounded).
    """
    blocks = trace.as_list()
    runs: List[SimulationStats] = []
    for budget in node_budgets:
        policy = policy_factory(budget)
        sim = Simulator(params, policy, cache_size, **(sim_kwargs or {}))
        runs.append(sim.run(blocks))
    return SweepResult(
        x_name="tree_node_budget",
        x_values=list(node_budgets),
        runs=runs,
        label=label,
        meta={"trace": trace.name, "cache_size": cache_size},
    )


def parameter_sweep(
    params: SystemParams,
    policy_factory: Callable[[Any], Any],
    trace: Trace,
    values: Sequence[Any],
    *,
    cache_size: int = 1024,
    x_name: str = "parameter",
    label: str = "",
    sim_kwargs: Optional[Dict[str, Any]] = None,
) -> SweepResult:
    """Generic one-knob sweep (Table 4's threshold, tree-children's k)."""
    blocks = trace.as_list()
    runs: List[SimulationStats] = []
    for value in values:
        policy = policy_factory(value)
        sim = Simulator(params, policy, cache_size, **(sim_kwargs or {}))
        runs.append(sim.run(blocks))
    return SweepResult(
        x_name=x_name,
        x_values=list(values),
        runs=runs,
        label=label,
        meta={"trace": trace.name, "cache_size": cache_size},
    )
