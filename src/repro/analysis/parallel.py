"""Deprecated shim: the spec/executor layer lives in
:mod:`repro.analysis.scheduler` now.

PR 3 unified every execution path behind the spec-driven scheduler; this
module only survived as the home of :class:`RunSpec` and friends.  Those
definitions have moved next to the :class:`~repro.analysis.scheduler.Scheduler`
that consumes them.  Import from ``repro.analysis.scheduler`` (or the
``repro.analysis`` package root) instead; this shim re-exports the public
names unchanged and will be removed in a future PR.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.analysis.parallel is deprecated; import from "
    "repro.analysis.scheduler (or the repro.analysis package root) instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.analysis.scheduler import (  # noqa: E402,F401
    SPEC_SCHEMA,
    TIMING_FIELDS,
    RunSpec,
    execute,
    resolve_trace,
    run_batch,
    spec_hash,
)

__all__ = [
    "SPEC_SCHEMA",
    "TIMING_FIELDS",
    "RunSpec",
    "execute",
    "resolve_trace",
    "run_batch",
    "spec_hash",
]
