"""Parallel experiment execution across processes.

A full reproduction sweeps hundreds of independent simulations; they are
embarrassingly parallel.  :func:`run_batch` fans a list of
:class:`RunSpec` out over worker processes and returns results in input
order.  Traces are regenerated inside each worker from ``(name, refs,
seed)`` rather than pickled (a 100k-reference trace ships as three ints
instead of megabytes).

The serial path (``max_workers=1``) runs in-process with no pool, so tests
and single-core machines pay no multiprocessing overhead or complexity.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.stats import SimulationStats
from repro.traces.synthetic import make_trace


@dataclass(frozen=True)
class RunSpec:
    """One simulation: workload x policy x cache size (+ knobs)."""

    trace_name: str
    policy_name: str
    cache_size: int
    num_references: int = 50_000
    seed: int = 1999
    t_cpu: Optional[float] = None
    policy_kwargs: Dict[str, Any] = field(default_factory=dict)
    sim_kwargs: Dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        return (
            f"{self.trace_name}/{self.policy_name}"
            f"@{self.cache_size}x{self.num_references}"
        )


def execute(spec: RunSpec) -> SimulationStats:
    """Run one spec to completion (used directly and by workers)."""
    params: SystemParams = (
        PAPER_PARAMS if spec.t_cpu is None else PAPER_PARAMS.with_t_cpu(spec.t_cpu)
    )
    trace = make_trace(
        spec.trace_name, num_references=spec.num_references, seed=spec.seed
    )
    policy = make_policy(spec.policy_name, **spec.policy_kwargs)
    sim = Simulator(params, policy, spec.cache_size, **spec.sim_kwargs)
    stats = sim.run(trace.as_list())
    stats.extra["spec"] = spec.label()
    return stats


def run_batch(
    specs: Sequence[RunSpec],
    *,
    max_workers: int = 1,
) -> List[SimulationStats]:
    """Execute all specs, ``max_workers`` at a time; results in input order."""
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
    if max_workers == 1 or len(specs) <= 1:
        return [execute(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(execute, specs))
