"""The canonical run description (:class:`RunSpec`) and its executor.

Every execution path in the repository — the memoised
:class:`~repro.analysis.runner.ExperimentContext` behind the benchmarks,
the figure harnesses in :mod:`repro.analysis.experiments`, the CLI's
``simulate``/``sweep``/``report`` commands, and ad-hoc batch fan-outs —
describes a simulation as one :class:`RunSpec`: workload, policy, cache
size, reference count, seed, timing overrides, and the policy/simulator
keyword arguments.  Specs are:

* **content-hashable** — :func:`spec_hash` derives a stable SHA-256 from
  the spec's canonical-JSON form (sorted keys, compact, no NaN; the same
  deterministic encoding :mod:`repro.store.codec` uses for snapshots), so
  identical work is identified across processes, sessions, and machines;
* **cheap to ship** — workers regenerate traces from ``(name, refs,
  seed)`` rather than unpickling megabytes of block ids;
* **executable anywhere** — :func:`execute` is the single function that
  turns a spec into :class:`~repro.sim.stats.SimulationStats`, both
  in-process and inside pool workers.

Scheduling (dedup, the two-tier result cache, process fan-out) lives in
:mod:`repro.analysis.scheduler`; :func:`run_batch` is kept as the
historical thin entry point over it.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.stats import SimulationStats
from repro.store.codec import canonical_json
from repro.traces import io as trace_io
from repro.traces.base import Trace
from repro.traces.synthetic import TRACE_NAMES, make_trace

#: Hash-schema marker baked into every spec hash.  Bump when the meaning
#: of a field changes incompatibly; old on-disk result caches then miss
#: cleanly instead of returning stale stats.
SPEC_SCHEMA = 1

#: SystemParams fields a spec may override (None = paper constant).
TIMING_FIELDS = ("t_cpu", "t_disk", "t_driver", "t_hit")


@dataclass(frozen=True)
class RunSpec:
    """One simulation: workload x policy x cache size (+ knobs).

    ``trace_name`` is either a synthetic workload name (regenerated from
    ``(num_references, seed)`` wherever the spec runs) or a path to a
    trace file.  File-backed specs execute normally but are excluded from
    the persistent result cache — file contents are not part of the hash,
    so caching them would be unsound (see :attr:`cacheable`).
    """

    trace_name: str
    policy_name: str
    cache_size: int
    num_references: int = 50_000
    seed: int = 1999
    t_cpu: Optional[float] = None
    t_disk: Optional[float] = None
    t_driver: Optional[float] = None
    t_hit: Optional[float] = None
    policy_kwargs: Dict[str, Any] = field(default_factory=dict)
    sim_kwargs: Dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        return (
            f"{self.trace_name}/{self.policy_name}"
            f"@{self.cache_size}x{self.num_references}"
        )

    @property
    def cacheable(self) -> bool:
        """True when the spec is safe to cache on disk by its hash alone.

        Synthetic workloads are pure functions of ``(name, refs, seed)``;
        a trace *file* can change under the same path, so file-backed
        specs only ever hit the in-memory memo.
        """
        return self.trace_name in TRACE_NAMES

    def params(self) -> SystemParams:
        """The paper's constants with this spec's timing overrides applied."""
        overrides = {
            name: getattr(self, name)
            for name in TIMING_FIELDS
            if getattr(self, name) is not None
        }
        return replace(PAPER_PARAMS, **overrides) if overrides else PAPER_PARAMS

    def as_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form; the input to :func:`spec_hash`."""
        out: Dict[str, Any] = {"spec_schema": SPEC_SCHEMA}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


def spec_hash(spec: RunSpec) -> str:
    """Stable content hash of a spec (hex SHA-256 of its canonical JSON).

    Raises :class:`TypeError` when a policy/sim kwarg is not canonically
    JSON-encodable.  This is deliberate: the old memo keys fell back to
    ``str()`` for unknown objects, which silently collided distinct
    configurations whose reprs matched; refusing to hash is the loud
    alternative.
    """
    try:
        payload = canonical_json(spec.as_dict())
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"run spec for {spec.label()} is not canonically hashable "
            f"(policy_kwargs/sim_kwargs must be JSON values): {exc}"
        ) from None
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------- traces

#: Per-process trace cache: a scheduler batch (or a pool worker handed
#: many specs of one workload) regenerates each distinct trace once, not
#: once per run.  Bounded so long multi-configuration sessions cannot
#: hold every workload ever generated.
_TRACE_CACHE: "OrderedDict[Tuple[str, int, int], Trace]" = OrderedDict()
_TRACE_CACHE_MAX = 8


def resolve_trace(name: str, num_references: int, seed: int) -> Trace:
    """Materialise a spec's workload (synthetic name or file path), cached."""
    key = (str(name), num_references, seed)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        _TRACE_CACHE.move_to_end(key)
        return cached
    if name in TRACE_NAMES:
        trace = make_trace(name, num_references=num_references, seed=seed)
    else:
        trace = trace_io.load(name)
    _TRACE_CACHE[key] = trace
    while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
        _TRACE_CACHE.popitem(last=False)
    return trace


# ---------------------------------------------------------------- execute


def execute(spec: RunSpec) -> SimulationStats:
    """Run one spec to completion (used directly and by pool workers).

    The per-run wall time lands in ``stats.extra["wall_time_s"]`` and the
    spec label in ``stats.extra["spec"]``; parity comparisons should
    ignore the former (it is the one nondeterministic field).
    """
    start = time.perf_counter()
    trace = resolve_trace(spec.trace_name, spec.num_references, spec.seed)
    policy = make_policy(spec.policy_name, **spec.policy_kwargs)
    # File-level policies need the workload's extent map; the synthetic
    # file workloads publish it in their params.
    from repro.policies.file_prefetch import FilePrefetchPolicy

    if (
        isinstance(policy, FilePrefetchPolicy)
        and policy.extent_map is None
        and trace.params.get("extents")
    ):
        policy.attach_extents(trace.params["extents"])
    sim = Simulator(spec.params(), policy, spec.cache_size, **spec.sim_kwargs)
    stats = sim.run(trace.as_list())
    stats.extra["spec"] = spec.label()
    stats.extra["wall_time_s"] = round(time.perf_counter() - start, 6)
    return stats


def run_batch(
    specs: Sequence[RunSpec],
    *,
    max_workers: int = 1,
    cache_dir: Optional[str] = None,
) -> List[SimulationStats]:
    """Execute all specs through a one-shot scheduler; results in input order.

    Thin wrapper over :class:`repro.analysis.scheduler.Scheduler` for
    callers that do not need to keep the memo between batches.
    """
    from repro.analysis.scheduler import Scheduler

    return Scheduler(max_workers=max_workers, cache_dir=cache_dir).run_all(
        list(specs)
    )
