"""Dependency-free ASCII line charts for the figure benchmarks.

The paper's figures are line plots (miss rate vs cache size, s vs T_cpu);
the benches print the underlying series as tables, and this module adds a
terminal rendering so the *shape* - crossovers, plateaus, who-wins-where -
is visible at a glance in ``bench_output.txt`` without any plotting
dependency.

Design: a fixed character grid; x positions map the series' sample indices
(the paper's x axes are log-spaced cache sizes, so index spacing = visual
log spacing); y is linearly scaled between the data extremes; each series
draws with its own glyph, first-come wins on collisions (series are drawn
in legend order, so earlier series stay visible).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

#: Glyphs assigned to series in order.
GLYPHS = "ox*+#@%&"


def render_chart(
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    title: Optional[str] = None,
    height: int = 12,
    width: Optional[int] = None,
    y_label: str = "",
) -> str:
    """Render series sampled at common x positions as an ASCII chart.

    ``width`` defaults to spreading the samples ~8 columns apart.  Returns
    a multi-line string: optional title, the plot grid with a y scale, an
    x-axis label row, and a legend mapping glyphs to series names.
    """
    if height < 3:
        raise ValueError(f"height must be >= 3, got {height!r}")
    if not series:
        raise ValueError("at least one series is required")
    n_points = len(x_labels)
    if n_points < 2:
        raise ValueError("need at least two x positions")
    for name, values in series.items():
        if len(values) != n_points:
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{n_points} x positions"
            )
    if len(series) > len(GLYPHS):
        raise ValueError(f"at most {len(GLYPHS)} series supported")

    if width is None:
        width = max(8 * (n_points - 1) + 1, 24)
    lo = min(min(v) for v in series.values())
    hi = max(max(v) for v in series.values())
    if hi - lo < 1e-12:
        hi = lo + 1.0  # flat data: centre it

    grid = [[" "] * width for _ in range(height)]

    def col(i: int) -> int:
        return round(i * (width - 1) / (n_points - 1))

    def row(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    for glyph, (name, values) in zip(GLYPHS, series.items()):
        # Connect consecutive samples with interpolated points; blank cells
        # only, so earlier series stay visible at collisions.
        for i in range(n_points - 1):
            c0, c1 = col(i), col(i + 1)
            v0, v1 = values[i], values[i + 1]
            span = max(c1 - c0, 1)
            for c in range(c0, c1 + 1):
                t = (c - c0) / span
                r = row(v0 + t * (v1 - v0))
                if grid[r][c] == " ":
                    grid[r][c] = glyph

    y_hi = f"{hi:.4g}"
    y_lo = f"{lo:.4g}"
    margin = max(len(y_hi), len(y_lo), len(y_label)) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for r, cells in enumerate(grid):
        if r == 0:
            prefix = y_hi.rjust(margin - 1) + " "
        elif r == height - 1:
            prefix = y_lo.rjust(margin - 1) + " "
        elif r == height // 2 and y_label:
            prefix = y_label.rjust(margin - 1) + " "
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(cells))
    # x axis: tick labels under their columns.
    axis = [" "] * (width + margin + 1)
    for i, label in enumerate(x_labels):
        text = str(label)
        start = margin + 1 + col(i)
        start = min(start, margin + 1 + width - len(text))
        for j, ch in enumerate(text):
            if start + j < len(axis):
                axis[start + j] = ch
    lines.append(" " * margin + "+" + "-" * width)
    lines.append("".join(axis).rstrip())
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(GLYPHS, series)
    )
    lines.append(" " * margin + legend)
    return "\n".join(lines)
