"""Memoised experiment runner shared by the benchmarks.

Most paper figures reuse the same underlying simulations (Figures 7-10 all
read off the *tree* policy's cache-size sweep; Figure 6's no-prefetch
baseline reappears in Figures 13 and 15).  :class:`ExperimentContext` is a
thin, configuration-carrying front end over the spec-driven
:class:`~repro.analysis.scheduler.Scheduler`: every run is described as a
:class:`~repro.analysis.scheduler.RunSpec` keyed by its content hash, so a
bench session pays for each distinct simulation exactly once — and, with
``jobs > 1`` and/or a persistent ``cache_dir``, pays in parallel or not
at all.

The intended shape is **plan-then-execute**: a figure declares its full
spec set up front (:meth:`ExperimentContext.run_all`), letting independent
runs fan out across worker processes, then reads individual results back
through the memoised :meth:`ExperimentContext.run`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.scheduler import RunSpec, Scheduler, resolve_trace
from repro.analysis.sweep import DEFAULT_CACHE_SIZES
from repro.params import PAPER_PARAMS, SystemParams
from repro.sim.stats import SimulationStats
from repro.store.codec import PathLike
from repro.traces.base import Trace


class ExperimentContext:
    """Shared configuration + scheduler for one benchmark/reproduction session."""

    def __init__(
        self,
        params: SystemParams = PAPER_PARAMS,
        *,
        num_references: int = 120_000,
        seed: int = 1999,
        cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
        jobs: int = 1,
        cache_dir: Optional[PathLike] = None,
    ) -> None:
        if num_references < 1:
            raise ValueError(
                f"num_references must be >= 1, got {num_references!r}"
            )
        self.params = params
        self.num_references = num_references
        self.seed = seed
        self.cache_sizes = list(cache_sizes)
        self.scheduler = Scheduler(max_workers=jobs, cache_dir=cache_dir)

    # ------------------------------------------------------------- traces

    def trace(self, name: str) -> Trace:
        """The context's instance of a workload (process-wide cached)."""
        return resolve_trace(name, self.num_references, self.seed)

    # ---------------------------------------------------------------- runs

    def spec(
        self,
        trace_name: str,
        policy_name: str,
        cache_size: int,
        *,
        t_cpu: Optional[float] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        sim_kwargs: Optional[Dict[str, Any]] = None,
    ) -> RunSpec:
        """A canonical :class:`RunSpec` under this context's configuration.

        The context's :class:`SystemParams` (plus a per-run ``t_cpu``) are
        expressed as overrides relative to the paper's constants, so the
        spec — and its content hash — is self-contained.
        """
        params = self.params if t_cpu is None else self.params.with_t_cpu(t_cpu)
        if params.block_size != PAPER_PARAMS.block_size:
            raise ValueError(
                "RunSpec cannot express a non-paper block_size "
                f"({params.block_size!r}); run the Simulator directly"
            )
        overrides = {
            name: getattr(params, name)
            for name in ("t_cpu", "t_disk", "t_driver", "t_hit")
            if getattr(params, name) != getattr(PAPER_PARAMS, name)
        }
        return RunSpec(
            trace_name=trace_name,
            policy_name=policy_name,
            cache_size=cache_size,
            num_references=self.num_references,
            seed=self.seed,
            policy_kwargs=dict(policy_kwargs or {}),
            sim_kwargs=dict(sim_kwargs or {}),
            **overrides,
        )

    def run_all(self, specs: Sequence[RunSpec]) -> List[SimulationStats]:
        """Plan-then-execute: satisfy a whole spec set at once.

        Figures call this with their full grid before reading individual
        results via :meth:`run`, so independent simulations parallelize
        across ``jobs`` workers instead of serializing one ``run()`` at a
        time.
        """
        return self.scheduler.run_all(specs)

    def run(
        self,
        trace_name: str,
        policy_name: str,
        cache_size: int,
        *,
        t_cpu: Optional[float] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        sim_kwargs: Optional[Dict[str, Any]] = None,
    ) -> SimulationStats:
        """One memoised simulation run (single-spec :meth:`run_all`)."""
        return self.scheduler.run(
            self.spec(
                trace_name,
                policy_name,
                cache_size,
                t_cpu=t_cpu,
                policy_kwargs=policy_kwargs,
                sim_kwargs=sim_kwargs,
            )
        )

    def sweep(
        self,
        trace_name: str,
        policy_name: str,
        *,
        cache_sizes: Optional[Sequence[int]] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        **run_kwargs,
    ) -> List[SimulationStats]:
        """One run per cache size, submitted as a single parallel batch."""
        sizes = self.cache_sizes if cache_sizes is None else list(cache_sizes)
        return self.run_all(
            [
                self.spec(
                    trace_name,
                    policy_name,
                    size,
                    policy_kwargs=policy_kwargs,
                    **run_kwargs,
                )
                for size in sizes
            ]
        )

    def metric_series(
        self, runs: Sequence[SimulationStats], metric: str
    ) -> List[float]:
        """Extract a stats attribute/extra key across runs."""
        out: List[float] = []
        for stats in runs:
            if hasattr(stats, metric):
                out.append(getattr(stats, metric))
            else:
                out.append(stats.extra[metric])
        return out


#: Default context used by ``benchmarks/`` (module-level so pytest-benchmark
#: repetitions and multiple bench files share one memo).
_default_context: Optional[ExperimentContext] = None


def default_context(
    num_references: Optional[int] = None, seed: int = 1999
) -> ExperimentContext:
    """Process-wide shared context.

    The first caller fixes the configuration; later callers must not ask
    for a different one (that would silently mix configurations).  The
    seed is checked unconditionally — a caller relying on the default
    reference count but a different seed is still a conflict.
    """
    global _default_context
    if _default_context is None:
        _default_context = ExperimentContext(
            num_references=num_references if num_references is not None else 60_000,
            seed=seed,
        )
        return _default_context
    if _default_context.seed != seed or (
        num_references is not None
        and _default_context.num_references != num_references
    ):
        raise RuntimeError(
            "default_context already initialised with a different configuration"
        )
    return _default_context
