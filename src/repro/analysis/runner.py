"""Memoised experiment runner shared by the benchmarks.

Most paper figures reuse the same underlying simulations (Figures 7-10 all
read off the *tree* policy's cache-size sweep; Figure 6's no-prefetch
baseline reappears in Figures 13 and 15).  :class:`ExperimentContext`
memoises generated traces and simulation runs by their full configuration
so a bench session pays for each distinct simulation exactly once.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.sweep import DEFAULT_CACHE_SIZES
from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.stats import SimulationStats
from repro.traces.base import Trace
from repro.traces.synthetic import make_trace


def _freeze(kwargs: Optional[Dict[str, Any]]) -> str:
    return json.dumps(kwargs or {}, sort_keys=True, default=str)


class ExperimentContext:
    """Shared configuration + memo for one benchmark/reproduction session."""

    def __init__(
        self,
        params: SystemParams = PAPER_PARAMS,
        *,
        num_references: int = 120_000,
        seed: int = 1999,
        cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
    ) -> None:
        if num_references < 1:
            raise ValueError(
                f"num_references must be >= 1, got {num_references!r}"
            )
        self.params = params
        self.num_references = num_references
        self.seed = seed
        self.cache_sizes = list(cache_sizes)
        self._traces: Dict[str, Trace] = {}
        self._stats: Dict[Tuple, SimulationStats] = {}

    # ------------------------------------------------------------- traces

    def trace(self, name: str) -> Trace:
        cached = self._traces.get(name)
        if cached is None:
            cached = make_trace(
                name, num_references=self.num_references, seed=self.seed
            )
            self._traces[name] = cached
        return cached

    # ---------------------------------------------------------------- runs

    def run(
        self,
        trace_name: str,
        policy_name: str,
        cache_size: int,
        *,
        t_cpu: Optional[float] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        sim_kwargs: Optional[Dict[str, Any]] = None,
    ) -> SimulationStats:
        """One memoised simulation run."""
        key = (
            trace_name,
            policy_name,
            cache_size,
            t_cpu,
            _freeze(policy_kwargs),
            _freeze(sim_kwargs),
        )
        cached = self._stats.get(key)
        if cached is not None:
            return cached
        params = self.params if t_cpu is None else self.params.with_t_cpu(t_cpu)
        policy = make_policy(policy_name, **(policy_kwargs or {}))
        trace = self.trace(trace_name)
        # File-level policies need the workload's extent map; the synthetic
        # file workloads publish it in their params.
        from repro.policies.file_prefetch import FilePrefetchPolicy

        if (
            isinstance(policy, FilePrefetchPolicy)
            and policy.extent_map is None
            and trace.params.get("extents")
        ):
            policy.attach_extents(trace.params["extents"])
        sim = Simulator(params, policy, cache_size, **(sim_kwargs or {}))
        stats = sim.run(trace.as_list())
        self._stats[key] = stats
        return stats

    def sweep(
        self,
        trace_name: str,
        policy_name: str,
        *,
        cache_sizes: Optional[Sequence[int]] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        **run_kwargs,
    ) -> List[SimulationStats]:
        """One run per cache size (memoised individually)."""
        sizes = self.cache_sizes if cache_sizes is None else list(cache_sizes)
        return [
            self.run(
                trace_name,
                policy_name,
                size,
                policy_kwargs=policy_kwargs,
                **run_kwargs,
            )
            for size in sizes
        ]

    def metric_series(
        self, runs: Sequence[SimulationStats], metric: str
    ) -> List[float]:
        """Extract a stats attribute/extra key across runs."""
        out: List[float] = []
        for stats in runs:
            if hasattr(stats, metric):
                out.append(getattr(stats, metric))
            else:
                out.append(stats.extra[metric])
        return out


#: Default context used by ``benchmarks/`` (module-level so pytest-benchmark
#: repetitions and multiple bench files share one memo).
_default_context: Optional[ExperimentContext] = None


def default_context(
    num_references: Optional[int] = None, seed: int = 1999
) -> ExperimentContext:
    """Process-wide shared context.

    The first caller fixes the configuration; later callers must not ask
    for a different one (that would silently mix configurations).
    """
    global _default_context
    if _default_context is None:
        _default_context = ExperimentContext(
            num_references=num_references if num_references is not None else 60_000,
            seed=seed,
        )
        return _default_context
    if num_references is not None and (
        _default_context.num_references != num_references
        or _default_context.seed != seed
    ):
        raise RuntimeError(
            "default_context already initialised with a different configuration"
        )
    return _default_context
