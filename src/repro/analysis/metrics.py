"""Cross-run derived metrics and paper-shape checks.

The reproduction does not chase the paper's absolute numbers (our traces
are synthetic stand-ins); what must hold is the *shape* of each result:
which policy wins on which workload, roughly by how much, and how trends
move with cache size.  These helpers compute the shape quantities the
paper states in prose (miss-rate reductions vs no-prefetch, additivity of
tree and next-limit gains) so benches and regression tests can assert
them.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.sweep import SweepResult


def miss_reduction(baseline: float, value: float) -> float:
    """Per cent reduction of ``value`` relative to ``baseline``.

    Positive = improvement.  Returns 0 for a zero baseline (no misses to
    reduce).
    """
    if baseline <= 0.0:
        return 0.0
    return 100.0 * (baseline - value) / baseline


def max_miss_reduction(
    baseline: SweepResult, candidate: SweepResult
) -> float:
    """Largest per-point miss-rate reduction across a sweep.

    This is the paper's "reduces cache miss rates by up to N%" quantity.
    """
    if baseline.x_values != candidate.x_values:
        raise ValueError("sweeps cover different x values")
    base = baseline.metric("miss_rate")
    cand = candidate.metric("miss_rate")
    return max(miss_reduction(b, c) for b, c in zip(base, cand))


def reduction_series(
    baseline: SweepResult, candidate: SweepResult
) -> Dict[str, Sequence[float]]:
    """Point-wise reductions, keyed for rendering."""
    base = baseline.metric("miss_rate")
    cand = candidate.metric("miss_rate")
    return {
        "baseline_miss": base,
        "candidate_miss": cand,
        "reduction_pct": [miss_reduction(b, c) for b, c in zip(base, cand)],
    }


def additivity_gap(
    no_prefetch: SweepResult,
    tree: SweepResult,
    next_limit: SweepResult,
    combined: SweepResult,
) -> Sequence[float]:
    """Per-point gap between the combined gain and the sum of parts.

    Section 9.1: "the reduction in miss rate of tree-next-limit compared to
    no-prefetch is the *sum* of the reductions of tree and next-limit".
    Returns ``(tree_gain + nl_gain) - combined_gain`` in miss-rate points;
    values near zero (or negative: combined better than the sum) confirm
    the claim.
    """
    base = no_prefetch.metric("miss_rate")
    t = tree.metric("miss_rate")
    nl = next_limit.metric("miss_rate")
    both = combined.metric("miss_rate")
    gaps = []
    for b, tv, nv, cv in zip(base, t, nl, both):
        tree_gain = b - tv
        nl_gain = b - nv
        combined_gain = b - cv
        gaps.append((tree_gain + nl_gain) - combined_gain)
    return gaps
