"""Experiment harnesses: sweeps, metrics, per-figure runners, reporting."""

from repro.analysis.ascii_chart import render_chart
from repro.analysis.experiments import ALL_EXPERIMENTS, ExperimentResult
from repro.analysis.metrics import (
    additivity_gap,
    max_miss_reduction,
    miss_reduction,
    reduction_series,
)
from repro.analysis.runner import ExperimentContext, default_context
from repro.analysis.scheduler import (
    ResultStore,
    RunSpec,
    Scheduler,
    SchedulerCounters,
    execute,
    run_batch,
    spec_hash,
)
from repro.analysis.sweep import (
    DEFAULT_CACHE_SIZES,
    DEFAULT_TCPU_VALUES,
    SweepResult,
    cache_size_sweep,
    parameter_sweep,
    spec_grid,
    tcpu_sweep,
    tree_nodes_sweep,
)
from repro.analysis.tables import render_dict, render_series, render_table
from repro.analysis.tracestats import (
    characterise,
    first_access_share,
    predictability,
    reuse_profile,
    sequential_run_lengths,
    sequentiality,
    working_set_curve,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "DEFAULT_CACHE_SIZES",
    "DEFAULT_TCPU_VALUES",
    "ExperimentContext",
    "ExperimentResult",
    "ResultStore",
    "Scheduler",
    "SchedulerCounters",
    "SweepResult",
    "additivity_gap",
    "cache_size_sweep",
    "characterise",
    "default_context",
    "first_access_share",
    "max_miss_reduction",
    "miss_reduction",
    "parameter_sweep",
    "predictability",
    "reduction_series",
    "RunSpec",
    "execute",
    "render_chart",
    "render_dict",
    "reuse_profile",
    "run_batch",
    "render_series",
    "render_table",
    "sequential_run_lengths",
    "sequentiality",
    "spec_grid",
    "spec_hash",
    "tcpu_sweep",
    "tree_nodes_sweep",
    "working_set_curve",
]
