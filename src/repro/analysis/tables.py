"""Plain-text rendering of experiment results.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the output aligned and consistent.  Figures are
rendered as series tables (x column plus one column per line in the
figure), which is the faithful text equivalent of a line plot.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


def format_value(value: Any, decimals: int = 2) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: Optional[str] = None,
    decimals: int = 2,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [format_value(cell, decimals) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    x_name: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    *,
    title: Optional[str] = None,
    decimals: int = 2,
    chart: bool = False,
) -> str:
    """Render figure-style data: one x column, one column per series.

    With ``chart=True`` an ASCII line chart of the same series is appended
    below the table (numeric series only), so figure shapes are visible in
    plain-text benchmark output.
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
    headers = [x_name, *series.keys()]
    rows = [
        [x, *(series[name][i] for name in series)]
        for i, x in enumerate(x_values)
    ]
    text = render_table(headers, rows, title=title, decimals=decimals)
    if chart and len(x_values) >= 2:
        from repro.analysis.ascii_chart import render_chart

        numeric = {
            name: [float(v) for v in values]
            for name, values in series.items()
        }
        text += "\n\n" + render_chart(x_values, numeric, y_label=" ")
    return text


def render_dict(mapping: Dict[str, Any], *, title: Optional[str] = None) -> str:
    """Key/value block, for run manifests."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(k) for k in mapping), default=0)
    for key, value in mapping.items():
        lines.append(f"  {key.ljust(width)} : {format_value(value)}")
    return "\n".join(lines)
