"""The spec-driven experiment engine: dedup, two-tier cache, process pool.

This is the single execution path behind every sweep-shaped workload in
the repository.  Callers — figure harnesses, benchmarks' shared
:class:`~repro.analysis.runner.ExperimentContext`, the CLI, ad-hoc
scripts — declare *what* to run as a batch of
:class:`~repro.analysis.parallel.RunSpec` and submit it to a
:class:`Scheduler`, which decides *how*:

1. **dedup** — specs are keyed by :func:`~repro.analysis.parallel.spec_hash`;
   identical work submitted twice in one batch (Figures 7-10 all read the
   tree policy's cache-size sweep) simulates once;
2. **memo** — results live in an in-process dict for the scheduler's
   lifetime, so a bench session pays for each distinct simulation once;
3. **result store** — with a ``cache_dir``, results also persist as
   checksummed, atomically-written snapshot files
   (:mod:`repro.store.codec`), so a *re-run* of the battery — another
   process, another day — replays from disk with zero simulations;
4. **fan-out** — whatever is left executes on a
   :class:`~concurrent.futures.ProcessPoolExecutor` (``max_workers > 1``)
   or in-process (``max_workers == 1``: no pool, no pickling, no
   multiprocessing complexity for tests and single-core machines).

Results always come back in input order, each carrying its wall time in
``stats.extra["wall_time_s"]``.  :attr:`Scheduler.counters` records how
every submitted spec was satisfied, which is what the CLI prints and the
CI cache-hit assertions grep.
"""

from __future__ import annotations

from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.parallel import RunSpec, execute, spec_hash
from repro.sim.stats import SimulationStats
from repro.store.codec import (
    PathLike,
    Snapshot,
    SnapshotCorruptError,
    read_snapshot,
    write_snapshot,
)

#: Snapshot ``kind`` for cached simulation results (the store layer's
#: ``model``/``session`` kinds hold trained state; this one holds stats).
KIND_RESULT = "result"


class SchedulerError(Exception):
    """A spec could not be satisfied even after its retry.

    Raised (with the original failure chained) when a worker process
    crashes or exceeds the run timeout twice for the same spec — a
    persistent problem, not the transient kind the retry exists for.
    """


class ResultStore:
    """Persistent spec-hash -> :class:`SimulationStats` store.

    Layout: ``<root>/<hash[:2]>/<hash>.snap``, one snapshot per result,
    sharded by the first hash byte so a full battery (hundreds of files)
    does not pile into one directory.  Files are written atomically
    (temp + fsync + rename) and carry the codec's SHA-256 body checksum;
    a truncated or bit-flipped entry raises
    :class:`~repro.store.codec.SnapshotCorruptError` on load instead of
    silently feeding a wrong result into a figure.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.snap"

    def load(self, key: str) -> Optional[SimulationStats]:
        """The cached stats for ``key``, or ``None`` when absent.

        Corrupt entries raise; they are never treated as misses.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        snapshot = read_snapshot(path)
        if snapshot.kind != KIND_RESULT or len(snapshot.records) != 1:
            raise SnapshotCorruptError(
                f"{path} is not a result snapshot "
                f"(kind={snapshot.kind!r}, records={len(snapshot.records)})"
            )
        try:
            return SimulationStats.from_record(snapshot.records[0])
        except (TypeError, ValueError) as exc:
            raise SnapshotCorruptError(
                f"{path} holds an unreadable stats record: {exc}"
            ) from None

    def save(self, key: str, spec: RunSpec, stats: SimulationStats) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        snapshot = Snapshot(
            kind=KIND_RESULT,
            model=spec.policy_name,
            header={
                "config": spec.as_dict(),
                "counts": {"accesses": stats.accesses},
            },
            records=[stats.to_record()],
        )
        write_snapshot(snapshot, path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.snap"))


@dataclass
class SchedulerCounters:
    """How each submitted spec was satisfied (cumulative per scheduler)."""

    submitted: int = 0
    executed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    deduped: int = 0
    retried: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "deduped": self.deduped,
            "retried": self.retried,
        }

    def summary(self) -> str:
        """One-line form for CLI output (and CI's cache-hit greps)."""
        return (
            f"submitted={self.submitted} executed={self.executed} "
            f"memo_hits={self.memo_hits} disk_hits={self.disk_hits} "
            f"deduped={self.deduped} retried={self.retried}"
        )


class Scheduler:
    """Dedup + two-tier cache + pool fan-out over :class:`RunSpec` batches."""

    def __init__(
        self,
        *,
        max_workers: int = 1,
        cache_dir: Optional[PathLike] = None,
        run_timeout_s: Optional[float] = None,
        task: Callable[[RunSpec], SimulationStats] = execute,
    ) -> None:
        """``run_timeout_s`` bounds each pooled simulation (a hung worker
        is terminated and the spec retried once); it only applies when
        ``max_workers > 1``, because in-process execution cannot be
        preempted.  ``task`` is the per-spec worker function — the default
        is the real simulation; tests substitute crashing/hanging stand-ins
        to exercise the fault handling."""
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
        if run_timeout_s is not None and run_timeout_s <= 0:
            raise ValueError(
                f"run_timeout_s must be positive, got {run_timeout_s!r}"
            )
        self.max_workers = max_workers
        self.run_timeout_s = run_timeout_s
        self.task = task
        self.store: Optional[ResultStore] = (
            ResultStore(cache_dir) if cache_dir is not None else None
        )
        self.memo: Dict[str, SimulationStats] = {}
        self.counters = SchedulerCounters()

    # ----------------------------------------------------------- submit

    def run(self, spec: RunSpec) -> SimulationStats:
        """Run (or recall) a single spec."""
        return self.run_all([spec])[0]

    def run_all(self, specs: Sequence[RunSpec]) -> List[SimulationStats]:
        """Satisfy every spec; results in input order.

        Each spec is resolved through the tiers in order — in-memory
        memo, persistent store (cacheable specs only), then execution —
        and a batch executes each *distinct* spec exactly once however
        many times it was submitted.
        """
        specs = list(specs)
        self.counters.submitted += len(specs)
        results: List[Optional[SimulationStats]] = [None] * len(specs)
        pending_indices: Dict[str, List[int]] = {}
        pending_specs: Dict[str, RunSpec] = {}
        for i, spec in enumerate(specs):
            key = spec_hash(spec)
            hit = self.memo.get(key)
            if hit is not None:
                self.counters.memo_hits += 1
                results[i] = hit
                continue
            if key in pending_indices:
                self.counters.deduped += 1
                pending_indices[key].append(i)
                continue
            if self.store is not None and spec.cacheable:
                loaded = self.store.load(key)
                if loaded is not None:
                    self.counters.disk_hits += 1
                    self.memo[key] = loaded
                    results[i] = loaded
                    continue
            pending_indices[key] = [i]
            pending_specs[key] = spec
        order = list(pending_specs)
        to_run = [pending_specs[key] for key in order]
        for key, spec, stats in zip(order, to_run, self._execute(to_run)):
            self.counters.executed += 1
            self.memo[key] = stats
            if self.store is not None and spec.cacheable:
                self.store.save(key, spec, stats)
            for i in pending_indices[key]:
                results[i] = stats
        return results  # type: ignore[return-value]  # every slot is filled

    # ---------------------------------------------------------- execute

    def _execute(self, specs: List[RunSpec]) -> List[SimulationStats]:
        if not specs:
            return []
        if self.max_workers == 1 or len(specs) == 1:
            return [self.task(spec) for spec in specs]
        workers = min(self.max_workers, len(specs))
        results, failures = self._pool_round(specs, workers)
        for index in sorted(failures):
            # One retry, each spec in its own fresh single-worker pool:
            # a crashed worker breaks its whole pool, so sharing a retry
            # pool would let one persistently-bad spec poison the batch's
            # innocent bystanders a second time.
            self.counters.retried += 1
            results[index] = self._retry_one(specs[index], failures[index])
        return [results[index] for index in range(len(specs))]

    def _pool_round(
        self, specs: List[RunSpec], workers: int
    ) -> tuple:
        """First pass over the pool; returns (results, failures) by index.

        Worker crashes (``BrokenProcessPool``) and per-run timeouts land
        in ``failures`` for the retry pass; ordinary exceptions raised by
        the task (bad trace file, invalid parameters) propagate unchanged
        — retrying those cannot help.
        """
        results: Dict[int, SimulationStats] = {}
        failures: Dict[int, BaseException] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        killed = False
        try:
            futures = [pool.submit(self.task, spec) for spec in specs]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result(
                        timeout=self.run_timeout_s
                    )
                except FutureTimeoutError:
                    failures[index] = TimeoutError(
                        f"simulation exceeded {self.run_timeout_s}s"
                    )
                    # The worker is stuck, not dead; terminate the whole
                    # pool (remaining futures fail into the retry pass).
                    self._kill_pool(pool)
                    killed = True
                except (BrokenProcessPool, CancelledError) as exc:
                    failures[index] = exc
        finally:
            pool.shutdown(wait=not killed, cancel_futures=True)
        return results, failures

    def _retry_one(
        self, spec: RunSpec, first_failure: BaseException
    ) -> SimulationStats:
        pool = ProcessPoolExecutor(max_workers=1)
        killed = False
        try:
            return pool.submit(self.task, spec).result(
                timeout=self.run_timeout_s
            )
        except FutureTimeoutError:
            self._kill_pool(pool)
            killed = True
            raise SchedulerError(
                f"{spec.policy_name} on {spec.trace_name}: timed out twice "
                f"(run_timeout_s={self.run_timeout_s})"
            ) from first_failure
        except BrokenProcessPool as exc:
            raise SchedulerError(
                f"{spec.policy_name} on {spec.trace_name}: worker process "
                "crashed twice"
            ) from exc
        finally:
            pool.shutdown(wait=not killed, cancel_futures=True)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()

    # ------------------------------------------------------- inspection

    def __len__(self) -> int:
        """Distinct results held in the in-memory memo."""
        return len(self.memo)
