"""The spec-driven experiment engine: specs, execution, and scheduling.

Every execution path in the repository — the memoised
:class:`~repro.analysis.runner.ExperimentContext` behind the benchmarks,
the figure harnesses in :mod:`repro.analysis.experiments`, the CLI's
``simulate``/``sweep``/``report`` commands, and ad-hoc batch fan-outs —
describes a simulation as one :class:`RunSpec`: workload, policy, cache
size, reference count, seed, timing overrides, and the policy/simulator
keyword arguments.  Specs are:

* **content-hashable** — :func:`spec_hash` derives a stable SHA-256 from
  the spec's canonical-JSON form (sorted keys, compact, no NaN; the same
  deterministic encoding :mod:`repro.store.codec` uses for snapshots), so
  identical work is identified across processes, sessions, and machines;
* **cheap to ship** — workers regenerate traces from ``(name, refs,
  seed)`` rather than unpickling megabytes of block ids;
* **executable anywhere** — :func:`execute` is the single function that
  turns a spec into :class:`~repro.sim.stats.SimulationStats`, both
  in-process and inside pool workers.

Batches of specs are submitted to a :class:`Scheduler`, which decides
*how* they run:

1. **dedup** — specs are keyed by :func:`spec_hash`; identical work
   submitted twice in one batch (Figures 7-10 all read the tree policy's
   cache-size sweep) simulates once;
2. **memo** — results live in an in-process dict for the scheduler's
   lifetime, so a bench session pays for each distinct simulation once;
3. **result store** — with a ``cache_dir``, results also persist as
   checksummed, atomically-written snapshot files
   (:mod:`repro.store.codec`), so a *re-run* of the battery — another
   process, another day — replays from disk with zero simulations;
4. **fan-out** — whatever is left executes on a
   :class:`~concurrent.futures.ProcessPoolExecutor` (``max_workers > 1``)
   or in-process (``max_workers == 1``: no pool, no pickling, no
   multiprocessing complexity for tests and single-core machines).

Results always come back in input order, each carrying its wall time in
``stats.extra["wall_time_s"]``.  :attr:`Scheduler.counters` records how
every submitted spec was satisfied, which is what the CLI prints and the
CI cache-hit assertions grep.

The spec/executor layer used to live in ``repro.analysis.parallel``; that
module is now a thin deprecation shim re-exporting from here.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.stats import SimulationStats
from repro.store.codec import (
    PathLike,
    Snapshot,
    SnapshotCorruptError,
    canonical_json,
    read_snapshot,
    write_snapshot,
)
from repro.traces import io as trace_io
from repro.traces.base import Trace
from repro.traces.synthetic import TRACE_NAMES, make_trace

#: Hash-schema marker baked into every spec hash.  Bump when the meaning
#: of a field changes incompatibly; old on-disk result caches then miss
#: cleanly instead of returning stale stats.
SPEC_SCHEMA = 1

#: SystemParams fields a spec may override (None = paper constant).
TIMING_FIELDS = ("t_cpu", "t_disk", "t_driver", "t_hit")

#: Snapshot ``kind`` for cached simulation results (the store layer's
#: ``model``/``session`` kinds hold trained state; this one holds stats).
KIND_RESULT = "result"


@dataclass(frozen=True)
class RunSpec:
    """One simulation: workload x policy x cache size (+ knobs).

    ``trace_name`` is either a synthetic workload name (regenerated from
    ``(num_references, seed)`` wherever the spec runs) or a path to a
    trace file.  File-backed specs execute normally but are excluded from
    the persistent result cache — file contents are not part of the hash,
    so caching them would be unsound (see :attr:`cacheable`).
    """

    trace_name: str
    policy_name: str
    cache_size: int
    num_references: int = 50_000
    seed: int = 1999
    t_cpu: Optional[float] = None
    t_disk: Optional[float] = None
    t_driver: Optional[float] = None
    t_hit: Optional[float] = None
    policy_kwargs: Dict[str, Any] = field(default_factory=dict)
    sim_kwargs: Dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        return (
            f"{self.trace_name}/{self.policy_name}"
            f"@{self.cache_size}x{self.num_references}"
        )

    @property
    def cacheable(self) -> bool:
        """True when the spec is safe to cache on disk by its hash alone.

        Synthetic workloads are pure functions of ``(name, refs, seed)``;
        a trace *file* can change under the same path, so file-backed
        specs only ever hit the in-memory memo.
        """
        return self.trace_name in TRACE_NAMES

    def params(self) -> SystemParams:
        """The paper's constants with this spec's timing overrides applied."""
        overrides = {
            name: getattr(self, name)
            for name in TIMING_FIELDS
            if getattr(self, name) is not None
        }
        return replace(PAPER_PARAMS, **overrides) if overrides else PAPER_PARAMS

    def as_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form; the input to :func:`spec_hash`."""
        out: Dict[str, Any] = {"spec_schema": SPEC_SCHEMA}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


def spec_hash(spec: RunSpec) -> str:
    """Stable content hash of a spec (hex SHA-256 of its canonical JSON).

    Raises :class:`TypeError` when a policy/sim kwarg is not canonically
    JSON-encodable.  This is deliberate: the old memo keys fell back to
    ``str()`` for unknown objects, which silently collided distinct
    configurations whose reprs matched; refusing to hash is the loud
    alternative.
    """
    try:
        payload = canonical_json(spec.as_dict())
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"run spec for {spec.label()} is not canonically hashable "
            f"(policy_kwargs/sim_kwargs must be JSON values): {exc}"
        ) from None
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------- traces

#: Per-process trace cache: a scheduler batch (or a pool worker handed
#: many specs of one workload) regenerates each distinct trace once, not
#: once per run.  Bounded so long multi-configuration sessions cannot
#: hold every workload ever generated.
_TRACE_CACHE: "OrderedDict[Tuple[str, int, int], Trace]" = OrderedDict()
_TRACE_CACHE_MAX = 8


def resolve_trace(name: str, num_references: int, seed: int) -> Trace:
    """Materialise a spec's workload (synthetic name or file path), cached."""
    key = (str(name), num_references, seed)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        _TRACE_CACHE.move_to_end(key)
        return cached
    if name in TRACE_NAMES:
        trace = make_trace(name, num_references=num_references, seed=seed)
    else:
        trace = trace_io.load(name)
    _TRACE_CACHE[key] = trace
    while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
        _TRACE_CACHE.popitem(last=False)
    return trace


# ---------------------------------------------------------------- execute


def execute(spec: RunSpec) -> SimulationStats:
    """Run one spec to completion (used directly and by pool workers).

    The per-run wall time lands in ``stats.extra["wall_time_s"]`` and the
    spec label in ``stats.extra["spec"]``; parity comparisons should
    ignore the former (it is the one nondeterministic field).
    """
    start = time.perf_counter()
    trace = resolve_trace(spec.trace_name, spec.num_references, spec.seed)
    policy = make_policy(spec.policy_name, **spec.policy_kwargs)
    # File-level policies need the workload's extent map; the synthetic
    # file workloads publish it in their params.
    from repro.policies.file_prefetch import FilePrefetchPolicy

    if (
        isinstance(policy, FilePrefetchPolicy)
        and policy.extent_map is None
        and trace.params.get("extents")
    ):
        policy.attach_extents(trace.params["extents"])
    sim = Simulator(spec.params(), policy, spec.cache_size, **spec.sim_kwargs)
    stats = sim.run(trace.as_list())
    stats.extra["spec"] = spec.label()
    stats.extra["wall_time_s"] = round(time.perf_counter() - start, 6)
    return stats


def run_batch(
    specs: Sequence[RunSpec],
    *,
    max_workers: int = 1,
    cache_dir: Optional[str] = None,
) -> List[SimulationStats]:
    """Execute all specs through a one-shot scheduler; results in input order.

    Thin wrapper over :class:`Scheduler` for callers that do not need to
    keep the memo between batches.
    """
    return Scheduler(max_workers=max_workers, cache_dir=cache_dir).run_all(
        list(specs)
    )


# --------------------------------------------------------------- scheduling


class SchedulerError(Exception):
    """A spec could not be satisfied even after its retry.

    Raised (with the original failure chained) when a worker process
    crashes or exceeds the run timeout twice for the same spec — a
    persistent problem, not the transient kind the retry exists for.
    """


class ResultStore:
    """Persistent spec-hash -> :class:`SimulationStats` store.

    Layout: ``<root>/<hash[:2]>/<hash>.snap``, one snapshot per result,
    sharded by the first hash byte so a full battery (hundreds of files)
    does not pile into one directory.  Files are written atomically
    (temp + fsync + rename) and carry the codec's SHA-256 body checksum;
    a truncated or bit-flipped entry raises
    :class:`~repro.store.codec.SnapshotCorruptError` on load instead of
    silently feeding a wrong result into a figure.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.snap"

    def load(self, key: str) -> Optional[SimulationStats]:
        """The cached stats for ``key``, or ``None`` when absent.

        Corrupt entries raise; they are never treated as misses.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        snapshot = read_snapshot(path)
        if snapshot.kind != KIND_RESULT or len(snapshot.records) != 1:
            raise SnapshotCorruptError(
                f"{path} is not a result snapshot "
                f"(kind={snapshot.kind!r}, records={len(snapshot.records)})"
            )
        try:
            return SimulationStats.from_record(snapshot.records[0])
        except (TypeError, ValueError) as exc:
            raise SnapshotCorruptError(
                f"{path} holds an unreadable stats record: {exc}"
            ) from None

    def save(self, key: str, spec: RunSpec, stats: SimulationStats) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        snapshot = Snapshot(
            kind=KIND_RESULT,
            model=spec.policy_name,
            header={
                "config": spec.as_dict(),
                "counts": {"accesses": stats.accesses},
            },
            records=[stats.to_record()],
        )
        write_snapshot(snapshot, path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.snap"))


@dataclass
class SchedulerCounters:
    """How each submitted spec was satisfied (cumulative per scheduler)."""

    submitted: int = 0
    executed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    deduped: int = 0
    retried: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "deduped": self.deduped,
            "retried": self.retried,
        }

    def summary(self) -> str:
        """One-line form for CLI output (and CI's cache-hit greps)."""
        return (
            f"submitted={self.submitted} executed={self.executed} "
            f"memo_hits={self.memo_hits} disk_hits={self.disk_hits} "
            f"deduped={self.deduped} retried={self.retried}"
        )


class Scheduler:
    """Dedup + two-tier cache + pool fan-out over :class:`RunSpec` batches."""

    def __init__(
        self,
        *,
        max_workers: int = 1,
        cache_dir: Optional[PathLike] = None,
        run_timeout_s: Optional[float] = None,
        task: Callable[[RunSpec], SimulationStats] = execute,
    ) -> None:
        """``run_timeout_s`` bounds each pooled simulation (a hung worker
        is terminated and the spec retried once); it only applies when
        ``max_workers > 1``, because in-process execution cannot be
        preempted.  ``task`` is the per-spec worker function — the default
        is the real simulation; tests substitute crashing/hanging stand-ins
        to exercise the fault handling."""
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
        if run_timeout_s is not None and run_timeout_s <= 0:
            raise ValueError(
                f"run_timeout_s must be positive, got {run_timeout_s!r}"
            )
        self.max_workers = max_workers
        self.run_timeout_s = run_timeout_s
        self.task = task
        self.store: Optional[ResultStore] = (
            ResultStore(cache_dir) if cache_dir is not None else None
        )
        self.memo: Dict[str, SimulationStats] = {}
        self.counters = SchedulerCounters()

    # ----------------------------------------------------------- submit

    def run(self, spec: RunSpec) -> SimulationStats:
        """Run (or recall) a single spec."""
        return self.run_all([spec])[0]

    def run_all(self, specs: Sequence[RunSpec]) -> List[SimulationStats]:
        """Satisfy every spec; results in input order.

        Each spec is resolved through the tiers in order — in-memory
        memo, persistent store (cacheable specs only), then execution —
        and a batch executes each *distinct* spec exactly once however
        many times it was submitted.
        """
        specs = list(specs)
        self.counters.submitted += len(specs)
        results: List[Optional[SimulationStats]] = [None] * len(specs)
        pending_indices: Dict[str, List[int]] = {}
        pending_specs: Dict[str, RunSpec] = {}
        for i, spec in enumerate(specs):
            key = spec_hash(spec)
            hit = self.memo.get(key)
            if hit is not None:
                self.counters.memo_hits += 1
                results[i] = hit
                continue
            if key in pending_indices:
                self.counters.deduped += 1
                pending_indices[key].append(i)
                continue
            if self.store is not None and spec.cacheable:
                loaded = self.store.load(key)
                if loaded is not None:
                    self.counters.disk_hits += 1
                    self.memo[key] = loaded
                    results[i] = loaded
                    continue
            pending_indices[key] = [i]
            pending_specs[key] = spec
        order = list(pending_specs)
        to_run = [pending_specs[key] for key in order]
        for key, spec, stats in zip(order, to_run, self._execute(to_run)):
            self.counters.executed += 1
            self.memo[key] = stats
            if self.store is not None and spec.cacheable:
                self.store.save(key, spec, stats)
            for i in pending_indices[key]:
                results[i] = stats
        return results  # type: ignore[return-value]  # every slot is filled

    # ---------------------------------------------------------- execute

    def _execute(self, specs: List[RunSpec]) -> List[SimulationStats]:
        if not specs:
            return []
        if self.max_workers == 1 or len(specs) == 1:
            return [self.task(spec) for spec in specs]
        workers = min(self.max_workers, len(specs))
        results, failures = self._pool_round(specs, workers)
        for index in sorted(failures):
            # One retry, each spec in its own fresh single-worker pool:
            # a crashed worker breaks its whole pool, so sharing a retry
            # pool would let one persistently-bad spec poison the batch's
            # innocent bystanders a second time.
            self.counters.retried += 1
            results[index] = self._retry_one(specs[index], failures[index])
        return [results[index] for index in range(len(specs))]

    def _pool_round(
        self, specs: List[RunSpec], workers: int
    ) -> tuple:
        """First pass over the pool; returns (results, failures) by index.

        Worker crashes (``BrokenProcessPool``) and per-run timeouts land
        in ``failures`` for the retry pass; ordinary exceptions raised by
        the task (bad trace file, invalid parameters) propagate unchanged
        — retrying those cannot help.
        """
        results: Dict[int, SimulationStats] = {}
        failures: Dict[int, BaseException] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        killed = False
        try:
            futures = [pool.submit(self.task, spec) for spec in specs]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result(
                        timeout=self.run_timeout_s
                    )
                except FutureTimeoutError:
                    failures[index] = TimeoutError(
                        f"simulation exceeded {self.run_timeout_s}s"
                    )
                    # The worker is stuck, not dead; terminate the whole
                    # pool (remaining futures fail into the retry pass).
                    self._kill_pool(pool)
                    killed = True
                except (BrokenProcessPool, CancelledError) as exc:
                    failures[index] = exc
        finally:
            pool.shutdown(wait=not killed, cancel_futures=True)
        return results, failures

    def _retry_one(
        self, spec: RunSpec, first_failure: BaseException
    ) -> SimulationStats:
        pool = ProcessPoolExecutor(max_workers=1)
        killed = False
        try:
            return pool.submit(self.task, spec).result(
                timeout=self.run_timeout_s
            )
        except FutureTimeoutError:
            self._kill_pool(pool)
            killed = True
            raise SchedulerError(
                f"{spec.policy_name} on {spec.trace_name}: timed out twice "
                f"(run_timeout_s={self.run_timeout_s})"
            ) from first_failure
        except BrokenProcessPool as exc:
            raise SchedulerError(
                f"{spec.policy_name} on {spec.trace_name}: worker process "
                "crashed twice"
            ) from exc
        finally:
            pool.shutdown(wait=not killed, cancel_futures=True)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()

    # ------------------------------------------------------- inspection

    def __len__(self) -> int:
        """Distinct results held in the in-memory memo."""
        return len(self.memo)
