"""One harness function per paper table/figure (the per-experiment index).

Each ``run_*`` function takes an :class:`~repro.analysis.runner.ExperimentContext`,
executes the simulations the paper's artifact needs (memoised), and returns
an :class:`ExperimentResult` whose ``text`` is the paper's rows/series and
whose ``data`` is the structured equivalent used by tests and EXPERIMENTS.md.

Every harness is **plan-then-execute**: it first declares its complete
spec grid with ``ctx.run_all`` — one batch the scheduler can dedupe,
replay from cache, and fan out over worker processes — then assembles the
figure from the now-memoised individual reads.  Adding a figure means
declaring its grid up front, not threading a loop through ``ctx.run``.

Paper-side expectations are recorded verbatim in ``paper_expectation`` so a
reader can compare shapes without the paper at hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analysis.metrics import miss_reduction
from repro.analysis.runner import ExperimentContext
from repro.analysis.tables import render_series, render_table
from repro.traces.synthetic import TRACE_NAMES

#: Main-comparison policies in Figure 6's legend order.
FIG6_POLICIES = ("no-prefetch", "next-limit", "tree", "tree-next-limit")

#: Table 4's threshold sweep bounds: "from 0.4 to 0.001".
THRESHOLD_VALUES = (0.001, 0.002, 0.008, 0.025, 0.05, 0.1, 0.2, 0.4)
#: Section 9.7: optimal child counts "ranged from 3 to 10".
CHILDREN_VALUES = (1, 3, 5, 10, 20)
#: Figure 13's tree node budgets (paper: best at 32K nodes ~ 1.25 MB).
NODE_BUDGETS = (1024, 4096, 8192, 32768, 131072, None)


@dataclass
class ExperimentResult:
    """A reproduced table or figure."""

    exp_id: str
    title: str
    paper_expectation: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.exp_id}: {self.title} ==\n{self.text}"

    def to_json(self) -> str:
        """Machine-readable form (plotting scripts, downstream analysis)."""
        import json

        return json.dumps(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "paper_expectation": self.paper_expectation,
                "data": self.data,
            },
            sort_keys=True,
            default=str,
        )


# --------------------------------------------------------------------- T1


def run_table1(ctx: ExperimentContext) -> ExperimentResult:
    """Table 1: the trace inventory."""
    rows = []
    for name in TRACE_NAMES:
        summary = ctx.trace(name).summary()
        rows.append(
            [
                summary["trace"],
                summary["references"],
                summary["unique_blocks"],
                summary["l1_cache_blocks"],
                summary["sequentiality"],
            ]
        )
    text = render_table(
        ["trace", "references", "unique_blocks", "l1_blocks", "sequentiality"],
        rows,
        title="Table 1: traces used in the study (synthetic stand-ins)",
    )
    return ExperimentResult(
        exp_id="table1",
        title="Traces used in the study",
        paper_expectation=(
            "cello 3.5M refs (30MB L1), snake 3.9M refs (5MB L1), CAD 147K "
            "object refs, sitar 665K file-block refs"
        ),
        text=text,
        data={"rows": rows},
    )


# --------------------------------------------------------------------- F6


def run_fig6(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 6: miss rate vs cache size for the four main policies."""
    ctx.run_all(
        [
            ctx.spec(trace, policy, size)
            for trace in TRACE_NAMES
            for policy in FIG6_POLICIES
            for size in ctx.cache_sizes
        ]
    )
    data: Dict[str, Any] = {}
    blocks_of_text: List[str] = []
    for trace in TRACE_NAMES:
        series = {}
        for policy in FIG6_POLICIES:
            runs = ctx.sweep(trace, policy)
            series[policy] = [round(s.miss_rate, 2) for s in runs]
        data[trace] = series
        blocks_of_text.append(
            render_series(
                "cache_blocks",
                ctx.cache_sizes,
                series,
                title=f"Figure 6 ({trace}): miss rate (%) vs cache size",
                chart=True,
            )
        )
    # Headline reductions the paper quotes.
    reductions = {}
    for trace in TRACE_NAMES:
        base = data[trace]["no-prefetch"]
        reductions[trace] = {
            policy: round(
                max(
                    miss_reduction(b, v)
                    for b, v in zip(base, data[trace][policy])
                ),
                1,
            )
            for policy in FIG6_POLICIES[1:]
        }
    data["max_reduction_vs_no_prefetch_pct"] = reductions
    return ExperimentResult(
        exp_id="fig6",
        title="Miss rate of the four main schemes vs cache size",
        paper_expectation=(
            "tree-next-limit lowest almost everywhere; cello/snake: up to "
            "~54% below no-prefetch (next-limit alone ~32%); CAD: tree cuts "
            "up to ~36% while next-limit == no-prefetch; sitar: next-limit "
            "and tree-next-limit cut up to ~73% while tree == no-prefetch; "
            "tree+next-limit gains are additive"
        ),
        text="\n\n".join(blocks_of_text),
        data=data,
    )


# ----------------------------------------------------------------- F7-F10


def _tree_sweep_metric(
    ctx: ExperimentContext, metric: str
) -> Dict[str, List[float]]:
    ctx.run_all(
        [
            ctx.spec(trace, "tree", size)
            for trace in TRACE_NAMES
            for size in ctx.cache_sizes
        ]
    )
    return {
        trace: [
            round(getattr(s, metric), 3) for s in ctx.sweep(trace, "tree")
        ]
        for trace in TRACE_NAMES
    }


def run_fig7(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 7: fraction of chosen prefetch candidates already cached."""
    series = _tree_sweep_metric(ctx, "candidates_already_cached_rate")
    return ExperimentResult(
        exp_id="fig7",
        title="Prefetch candidates already resident in the cache (%)",
        paper_expectation=(
            "rises with cache size; above ~2048 blocks, over 85% of chosen "
            "candidates already reside in the cache (working sets fit)"
        ),
        text=render_series(
            "cache_blocks", ctx.cache_sizes, series,
            title="Figure 7: candidates already cached (%), tree policy",
            chart=True,
        ),
        data=series,
    )


def run_fig8(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 8: blocks prefetched per access period."""
    series = _tree_sweep_metric(ctx, "prefetches_per_period")
    return ExperimentResult(
        exp_id="fig8",
        title="Blocks prefetched per access period (tree policy)",
        paper_expectation=(
            "highest at small caches (snake ~2/period, a 180% traffic "
            "increase; others much less) and falls below ~1/3 per period at "
            "large caches"
        ),
        text=render_series(
            "cache_blocks", ctx.cache_sizes, series,
            title="Figure 8: prefetches per access period, tree policy",
            chart=True,
        ),
        data=series,
    )


def run_fig9(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 9: prefetch cache hit rate."""
    series = _tree_sweep_metric(ctx, "prefetch_cache_hit_rate")
    return ExperimentResult(
        exp_id="fig9",
        title="Hit rate in the prefetch cache (tree policy)",
        paper_expectation=(
            "CAD around 75% (predictions carry high probability); the "
            "other traces much lower (paper: ~10%)"
        ),
        text=render_series(
            "cache_blocks", ctx.cache_sizes, series,
            title="Figure 9: prefetch cache hit rate (%), tree policy",
            chart=True,
        ),
        data=series,
    )


def run_fig10(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 10: average probability of the prefetched blocks."""
    series = _tree_sweep_metric(ctx, "mean_prefetched_probability")
    return ExperimentResult(
        exp_id="fig10",
        title="Average probability of prefetched blocks (tree policy)",
        paper_expectation=(
            "CAD's prefetched blocks carry a higher average probability "
            "than the other traces', explaining its higher prefetch cache "
            "hit rate"
        ),
        text=render_series(
            "cache_blocks", ctx.cache_sizes, series,
            title="Figure 10: mean probability of prefetched blocks",
            chart=True,
        ),
        data=series,
    )


# ---------------------------------------------------------------- F11-F12

TCPU_VALUES = (20.0, 40.0, 50.0, 80.0, 160.0, 320.0, 640.0)


def run_fig11(ctx: ExperimentContext, cache_size: int = 1024) -> ExperimentResult:
    """Figure 11: s (prefetches per period) vs T_cpu, CAD trace."""
    ctx.run_all(
        [
            ctx.spec(trace, "tree", cache_size, t_cpu=t)
            for trace in TRACE_NAMES
            for t in TCPU_VALUES
        ]
    )
    series: Dict[str, List[float]] = {}
    for trace in TRACE_NAMES:
        series[trace] = [
            round(
                ctx.run(trace, "tree", cache_size, t_cpu=t).prefetches_per_period,
                3,
            )
            for t in TCPU_VALUES
        ]
    return ExperimentResult(
        exp_id="fig11",
        title="Prefetching rate vs computation time T_cpu",
        paper_expectation=(
            "s rises with T_cpu initially (more I/O can overlap) then "
            "plateaus once the eviction cost caps further prefetching; "
            "paper plots CAD at cache 1024.  Note: with T_disk = 15 ms, "
            "per-period compute already exceeds the disk time at T_cpu = "
            "20 ms, so in our implementation the whole 20-640 ms range "
            "sits on the plateau - extend the sweep below ~10 ms to see "
            "the rising edge"
        ),
        text=render_series(
            "t_cpu_ms", list(TCPU_VALUES), series,
            title=f"Figure 11: prefetches per period vs T_cpu (cache {cache_size})",
            chart=True,
        ),
        data=series,
    )


def run_fig12(ctx: ExperimentContext, cache_size: int = 1024) -> ExperimentResult:
    """Figure 12: prefetch cache hit rate vs T_cpu."""
    ctx.run_all(
        [
            ctx.spec(trace, "tree", cache_size, t_cpu=t)
            for trace in TRACE_NAMES
            for t in TCPU_VALUES
        ]
    )
    series: Dict[str, List[float]] = {}
    for trace in TRACE_NAMES:
        series[trace] = [
            round(
                ctx.run(trace, "tree", cache_size, t_cpu=t).prefetch_cache_hit_rate,
                2,
            )
            for t in TCPU_VALUES
        ]
    return ExperimentResult(
        exp_id="fig12",
        title="Prefetch cache hit rate vs computation time T_cpu",
        paper_expectation=(
            "hit rate decreases as T_cpu grows (more speculative prefetches "
            "issued) and flattens above ~50 ms; combined miss rate is "
            "insensitive to T_cpu above 50 ms"
        ),
        text=render_series(
            "t_cpu_ms", list(TCPU_VALUES), series,
            title=f"Figure 12: prefetch cache hit rate (%) vs T_cpu (cache {cache_size})",
            chart=True,
        ),
        data=series,
    )


# --------------------------------------------------------------------- F13


def run_fig13(
    ctx: ExperimentContext, trace: str = "cad", cache_sizes: Any = None
) -> ExperimentResult:
    """Figure 13: limiting prefetch-tree memory (miss rate vs node budget)."""
    sizes = list(cache_sizes) if cache_sizes is not None else ctx.cache_sizes[:4]
    ctx.run_all(
        [ctx.spec(trace, "no-prefetch", size) for size in sizes]
        + [
            ctx.spec(
                trace, "tree", size,
                policy_kwargs=(
                    {"max_tree_nodes": budget} if budget is not None else {}
                ),
            )
            for size in sizes
            for budget in NODE_BUDGETS
        ]
    )
    series: Dict[str, List[float]] = {}
    budget_labels = [str(b) if b is not None else "unbounded" for b in NODE_BUDGETS]
    for size in sizes:
        base = ctx.run(trace, "no-prefetch", size).miss_rate
        ratios = []
        for budget in NODE_BUDGETS:
            kwargs = {"max_tree_nodes": budget} if budget is not None else {}
            st = ctx.run(trace, "tree", size, policy_kwargs=kwargs)
            ratios.append(round(st.miss_rate / base, 4) if base > 0 else 1.0)
        series[f"cache_{size}"] = ratios
    return ExperimentResult(
        exp_id="fig13",
        title="Tree memory budget vs miss rate (ratio to no-prefetch)",
        paper_expectation=(
            "for CAD, ~32K nodes (~1.25 MB at 40 B/node) already achieves "
            "the unbounded tree's performance across cache sizes"
        ),
        text=render_series(
            "tree_nodes", budget_labels, series,
            title=f"Figure 13: miss rate of tree / no-prefetch vs node budget ({trace})",
            decimals=4,
        ),
        data={"budgets": budget_labels, "series": series},
    )


# --------------------------------------------------------------------- T2


def run_table2(ctx: ExperimentContext, cache_size: int = 1024) -> ExperimentResult:
    """Table 2: prediction accuracy per trace."""
    ctx.run_all([ctx.spec(trace, "tree", cache_size) for trace in TRACE_NAMES])
    rows = []
    data = {}
    for trace in TRACE_NAMES:
        st = ctx.run(trace, "tree", cache_size)
        rows.append([trace, round(st.prediction_accuracy, 2)])
        data[trace] = st.prediction_accuracy
    return ExperimentResult(
        exp_id="table2",
        title="Prediction accuracy of the prefetch tree",
        paper_expectation=(
            "cello 35.78%, snake 61.50%, CAD 59.90%, sitar 71.39%; cello "
            "lowest because its 30MB L1 already captured the locality"
        ),
        text=render_table(
            ["trace", "prediction_accuracy_%"], rows,
            title="Table 2: prediction accuracies",
        ),
        data=data,
    )


# --------------------------------------------------------------------- F14


def run_fig14(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 14: predictable blocks NOT already cached."""
    series = _tree_sweep_metric(ctx, "predictable_uncached_rate")
    return ExperimentResult(
        exp_id="fig14",
        title="Predictable blocks not already cached (%)",
        paper_expectation=(
            "low (~15%) for snake, CAD and sitar - the tree identifies "
            "candidates well but most are already cached"
        ),
        text=render_series(
            "cache_blocks", ctx.cache_sizes, series,
            title="Figure 14: predictable blocks not cached (%), tree policy",
        ),
        data=series,
    )


# --------------------------------------------------------------------- F15


def run_fig15(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 15: no-prefetch vs tree vs perfect-selector."""
    ctx.run_all(
        [
            ctx.spec(trace, policy, size)
            for trace in TRACE_NAMES
            for policy in ("no-prefetch", "tree", "perfect-selector")
            for size in ctx.cache_sizes
        ]
    )
    data: Dict[str, Any] = {}
    blocks_of_text: List[str] = []
    for trace in TRACE_NAMES:
        series = {}
        for policy in ("no-prefetch", "tree", "perfect-selector"):
            runs = ctx.sweep(trace, policy)
            series[policy] = [round(s.miss_rate, 2) for s in runs]
        data[trace] = series
        blocks_of_text.append(
            render_series(
                "cache_blocks", ctx.cache_sizes, series,
                title=f"Figure 15 ({trace}): miss rate (%) vs cache size",
                chart=True,
            )
        )
    return ExperimentResult(
        exp_id="fig15",
        title="Oracle selection bound (perfect-selector)",
        paper_expectation=(
            "perfect-selector reduces miss rate considerably below tree for "
            "all traces - headroom is in candidate selection, not prediction"
        ),
        text="\n\n".join(blocks_of_text),
        data=data,
    )


# --------------------------------------------------------------------- T3


def run_table3(ctx: ExperimentContext, cache_size: int = 1024) -> ExperimentResult:
    """Table 3: last-visited-child repeat rate."""
    ctx.run_all([ctx.spec(trace, "tree", cache_size) for trace in TRACE_NAMES])
    rows = []
    data = {}
    for trace in TRACE_NAMES:
        st = ctx.run(trace, "tree", cache_size)
        rows.append(
            [trace, round(st.lvc_repeat_rate, 2),
             round(st.lvc_repeat_rate_nonroot, 2)]
        )
        data[trace] = {
            "all_nodes": st.lvc_repeat_rate,
            "nonroot": st.lvc_repeat_rate_nonroot,
        }
    return ExperimentResult(
        exp_id="table3",
        title="Successive visits to the last visited child",
        paper_expectation=(
            "cello 24.37%, snake 38.49%, CAD 68.61%, sitar 73.61%.  With "
            "traces ~30x shorter than the paper's, parse restarts at the "
            "root depress the all-node rate; the non-root column shows the "
            "mature per-node behaviour and the cross-trace ordering holds "
            "in both"
        ),
        text=render_table(
            ["trace", "lvc_repeat_%", "lvc_repeat_nonroot_%"], rows,
            title="Table 3: last-visited-child repeat rate",
        ),
        data=data,
    )


# --------------------------------------------------------------------- F16


def run_fig16(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 16: last visited children already cached (tree policy)."""
    series = _tree_sweep_metric(ctx, "lvc_cached_rate")
    return ExperimentResult(
        exp_id="fig16",
        title="Last visited children already cached (%)",
        paper_expectation=(
            "more than 85% of last-visited children are already cached at "
            "most cache sizes, which is why tree-lvc gains nothing"
        ),
        text=render_series(
            "cache_blocks", ctx.cache_sizes, series,
            title="Figure 16: last visited children already cached (%)",
        ),
        data=series,
    )


def run_tree_lvc_comparison(
    ctx: ExperimentContext,
) -> ExperimentResult:
    """Section 9.6's negative result: tree-lvc == tree."""
    ctx.run_all(
        [
            ctx.spec(trace, policy, size)
            for trace in TRACE_NAMES
            for policy in ("tree", "tree-lvc")
            for size in ctx.cache_sizes
        ]
    )
    data: Dict[str, Any] = {}
    rows = []
    for trace in TRACE_NAMES:
        tree_runs = ctx.sweep(trace, "tree")
        lvc_runs = ctx.sweep(trace, "tree-lvc")
        tree_miss = [round(s.miss_rate, 2) for s in tree_runs]
        lvc_miss = [round(s.miss_rate, 2) for s in lvc_runs]
        data[trace] = {"tree": tree_miss, "tree-lvc": lvc_miss}
        for size, t, l in zip(ctx.cache_sizes, tree_miss, lvc_miss):
            rows.append([trace, size, t, l, round(l - t, 2)])
    return ExperimentResult(
        exp_id="sec9.6",
        title="tree vs tree-lvc miss rates",
        paper_expectation=(
            "no noticeable difference between tree and tree-lvc"
        ),
        text=render_table(
            ["trace", "cache_blocks", "tree_miss", "tree_lvc_miss", "delta"],
            rows,
            title="Section 9.6: tree vs tree-lvc",
        ),
        data=data,
    )


# --------------------------------------------------------------------- T4


def run_table4(ctx: ExperimentContext, cache_size: int = 1024) -> ExperimentResult:
    """Table 4: best vs worst tree-threshold over the threshold sweep."""
    ctx.run_all(
        [
            ctx.spec(
                trace, "tree-threshold", cache_size,
                policy_kwargs={"threshold": threshold},
            )
            for trace in TRACE_NAMES
            for threshold in THRESHOLD_VALUES
        ]
    )
    rows = []
    data: Dict[str, Any] = {}
    for trace in TRACE_NAMES:
        misses = {}
        for threshold in THRESHOLD_VALUES:
            st = ctx.run(
                trace,
                "tree-threshold",
                cache_size,
                policy_kwargs={"threshold": threshold},
            )
            misses[threshold] = st.miss_rate
        best_t = min(misses, key=misses.get)
        worst_t = max(misses, key=misses.get)
        best, worst = misses[best_t], misses[worst_t]
        diff = miss_reduction(worst, best)
        rows.append(
            [trace, round(best, 3), best_t, round(worst, 3), worst_t,
             round(diff, 2)]
        )
        data[trace] = {
            "misses": misses,
            "best": (best_t, best),
            "worst": (worst_t, worst),
            "difference_pct": diff,
        }
    return ExperimentResult(
        exp_id="table4",
        title="Sensitivity of tree-threshold to its threshold",
        paper_expectation=(
            "no single threshold is best for all traces; worst can be up to "
            "~15% above best (snake 15.12%, CAD 15.11%, sitar 10.95%, "
            "cello 1.60%)"
        ),
        text=render_table(
            ["trace", "best_miss", "best_thresh", "worst_miss",
             "worst_thresh", "difference_%"],
            rows,
            title=f"Table 4: tree-threshold best vs worst (cache {cache_size})",
            decimals=3,
        ),
        data=data,
    )


# --------------------------------------------------------------------- F17


def run_fig17(
    ctx: ExperimentContext,
    traces: Any = ("cello", "snake"),
    cache_sizes: Any = None,
) -> ExperimentResult:
    """Figure 17: tree vs best tree-threshold vs best tree-children.

    The paper plots the cello and snake traces; each point of the parametric
    curves is itself a sweep (8 thresholds / 5 child counts), so this is by
    far the most simulation-hungry figure — the cache axis defaults to every
    other size of the context's grid.
    """
    sizes = list(cache_sizes) if cache_sizes is not None else ctx.cache_sizes[::2]
    ctx.run_all(
        [ctx.spec(trace, "tree", size) for trace in traces for size in sizes]
        + [
            ctx.spec(
                trace, "tree-threshold", size,
                policy_kwargs={"threshold": t},
            )
            for trace in traces
            for size in sizes
            for t in THRESHOLD_VALUES
        ]
        + [
            ctx.spec(
                trace, "tree-children", size,
                policy_kwargs={"num_children": k},
            )
            for trace in traces
            for size in sizes
            for k in CHILDREN_VALUES
        ]
    )
    data: Dict[str, Any] = {}
    blocks_of_text: List[str] = []
    for trace in traces:
        tree_miss = [
            round(s.miss_rate, 2)
            for s in ctx.sweep(trace, "tree", cache_sizes=sizes)
        ]
        best_threshold: List[float] = []
        best_children: List[float] = []
        for size in sizes:
            thr = min(
                ctx.run(
                    trace, "tree-threshold", size,
                    policy_kwargs={"threshold": t},
                ).miss_rate
                for t in THRESHOLD_VALUES
            )
            chd = min(
                ctx.run(
                    trace, "tree-children", size,
                    policy_kwargs={"num_children": k},
                ).miss_rate
                for k in CHILDREN_VALUES
            )
            best_threshold.append(round(thr, 2))
            best_children.append(round(chd, 2))
        series = {
            "tree": tree_miss,
            "best tree-threshold": best_threshold,
            "best tree-children": best_children,
        }
        data[trace] = series
        blocks_of_text.append(
            render_series(
                "cache_blocks", sizes, series,
                title=f"Figure 17 ({trace}): miss rate (%) vs cache size",
                chart=True,
            )
        )
    return ExperimentResult(
        exp_id="fig17",
        title="Cost-benefit tree vs best-tuned parametric schemes",
        paper_expectation=(
            "tree's untuned miss rate tracks the best tuned tree-threshold "
            "and tree-children - the cost-benefit analysis finds the "
            "optimal prefetch volume dynamically"
        ),
        text="\n\n".join(blocks_of_text),
        data=data,
    )


#: Every experiment in paper order; EXPERIMENTS.md and the benches iterate this.
ALL_EXPERIMENTS = (
    run_table1,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_table2,
    run_fig14,
    run_fig15,
    run_table3,
    run_fig16,
    run_tree_lvc_comparison,
    run_table4,
    run_fig17,
)
