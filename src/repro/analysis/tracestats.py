"""Trace characterisation: the workload properties the paper reasons with.

Quantifies, for any block reference stream, the properties that determine
which prefetching scheme can help (and that the synthetic generators are
calibrated against):

* **sequentiality** - fraction of references equal to predecessor + 1
  (one-block lookahead's food);
* **run-length distribution** - lengths of maximal sequential runs;
* **reuse profile** - LRU stack-distance histogram and the implied
  hit-rate-vs-cache-size curve H(n) (what plain caching can do);
* **predictability** - Table 2's measure, from a bare LZ-tree pass, plus
  the last-visited-child repeat rates of Table 3;
* **working set** - distinct blocks per window of the stream;
* **first-access share** - compulsory misses no history scheme can fix
  (only sequential lookahead inside cold runs can).

``characterise(trace)`` bundles everything into one report dict; the
``trace`` CLI and Table 1's bench use it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.cache.ghost import StackDistanceProfiler
from repro.core.tree import PrefetchTree


def sequential_run_lengths(blocks: Sequence[int]) -> List[int]:
    """Lengths of maximal runs where each block is predecessor + 1."""
    runs: List[int] = []
    current = 1
    arr = list(blocks)
    for prev, cur in zip(arr, arr[1:]):
        if cur == prev + 1:
            current += 1
        else:
            runs.append(current)
            current = 1
    if arr:
        runs.append(current)
    return runs


def sequentiality(blocks: Sequence[int]) -> float:
    """Fraction of references continuing a +1 run."""
    arr = np.asarray(blocks, dtype=np.int64)
    if arr.size < 2:
        return 0.0
    return float(np.mean(arr[1:] == arr[:-1] + 1))


def first_access_share(blocks: Sequence[int]) -> float:
    """Fraction of references that are first touches (compulsory misses)."""
    if not len(blocks):
        return 0.0
    seen = set()
    first = 0
    for b in blocks:
        if b not in seen:
            seen.add(b)
            first += 1
    return first / len(blocks)


def reuse_profile(
    blocks: Sequence[int], *, max_depth: int = 8192
) -> Dict[str, object]:
    """Stack-distance statistics and the implied H(n) curve."""
    profiler = StackDistanceProfiler(max_depth=max_depth)
    for b in blocks:
        profiler.record(b)
    checkpoints = [n for n in (128, 256, 512, 1024, 2048, 4096, 8192)
                   if n <= max_depth]
    return {
        "cold_share": (
            profiler.cold_references / profiler.references
            if profiler.references else 0.0
        ),
        "hit_rate_by_cache": {
            n: profiler.cumulative_hit_rate(n) for n in checkpoints
        },
    }


def predictability(blocks: Sequence[int]) -> Dict[str, float]:
    """Table 2/3 measures from a bare LZ-tree pass (no cache involved)."""
    tree = PrefetchTree()
    tree.record_all(blocks)
    stats = tree.stats
    return {
        "prediction_accuracy": stats.prediction_accuracy,
        "lvc_repeat_rate": stats.lvc_repeat_rate,
        "lvc_repeat_rate_nonroot": stats.lvc_repeat_rate_nonroot,
        "tree_nodes": tree.node_count,
    }


def working_set_curve(
    blocks: Sequence[int], *, windows: Sequence[int] = (1000, 10_000, 100_000)
) -> Dict[int, float]:
    """Mean distinct blocks per window of each size (Denning working set)."""
    arr = list(blocks)
    out: Dict[int, float] = {}
    for window in windows:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if len(arr) < window:
            out[window] = float(len(set(arr)))
            continue
        sizes = []
        step = max(1, window // 2)  # half-overlapping windows
        for start in range(0, len(arr) - window + 1, step):
            sizes.append(len(set(arr[start : start + window])))
        out[window] = float(np.mean(sizes))
    return out


def characterise(blocks: Sequence[int], *, max_depth: int = 8192) -> Dict[str, object]:
    """Full workload characterisation report."""
    runs = sequential_run_lengths(blocks)
    report: Dict[str, object] = {
        "references": len(blocks),
        "unique_blocks": len(set(blocks)),
        "sequentiality": sequentiality(blocks),
        "mean_run_length": float(np.mean(runs)) if runs else 0.0,
        "max_run_length": max(runs) if runs else 0,
        "first_access_share": first_access_share(blocks),
        "working_set": working_set_curve(
            blocks, windows=(1000, 10_000)
        ),
    }
    report.update(reuse_profile(blocks, max_depth=max_depth))
    report.update(predictability(blocks))
    return report
