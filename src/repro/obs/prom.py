"""Prometheus text exposition over ``ServiceMetrics`` state.

One renderer serves both shapes: a bare server's own
``ServiceMetrics.to_state()`` and a gateway's fleet-merged state with
the gateway's counters layered on top.  The output is the Prometheus
text format, version 0.0.4 — ``# TYPE`` headers, cumulative histogram
buckets with ``le`` labels, escaped label values, final newline — so a
scrape of the STATS path (``format="prometheus"``) or of ``repro
metrics`` drops straight into promtool, a test grep, or a real scraper.

The load-bearing families:

* ``advice_latency`` — histogram of OBSERVE service time in seconds,
  rebuilt from the log-bucketed :class:`~repro.service.metrics.\
LatencyHistogram` (bucket upper bound ``1e-6 * 2**((i+1)/4)`` s).
* every ``ServiceMetrics`` counter under its own name
  (``overload_rejections``, ``sessions_opened``, ...), plus any caller
  extras (the gateway contributes ``breakers_opened`` et al.).
* caller-supplied gauges: ``brownout_level``, ``inflight``,
  ``breaker_open``, ``tenant_model_bytes``...
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["render_exposition", "bucket_upper_s"]

#: A gauge sample: (family, labels-or-None, value).
Gauge = Tuple[str, Optional[Mapping[str, Any]], float]

_HISTOGRAM_BASE_S = 1e-6
_HISTOGRAM_STEPS_PER_OCTAVE = 4


def bucket_upper_s(index: int) -> float:
    """Upper bound (seconds) of ``LatencyHistogram`` bucket ``index``."""
    return _HISTOGRAM_BASE_S * (
        2.0 ** ((index + 1) / _HISTOGRAM_STEPS_PER_OCTAVE)
    )


def _escape(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: Optional[Mapping[str, Any]]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(labels[key])}"' for key in sorted(labels)
    )
    return "{" + body + "}"


def _num(value: Any) -> str:
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _histogram_lines(
    family: str,
    state: Optional[Dict[str, Any]],
    labels: Optional[Mapping[str, Any]] = None,
    help_text: Optional[str] = None,
) -> List[str]:
    """Cumulative-bucket rendering of one ``LatencyHistogram.to_state()``."""
    state = state or {}
    # bucket keys are ints fresh out of to_state() and strings after a
    # JSON wire hop; normalise once
    buckets = {
        int(key): int(value)
        for key, value in (state.get("buckets", {}) or {}).items()
    }
    lines: List[str] = []
    if help_text:
        lines.append(f"# HELP {family} {help_text}")
    lines.append(f"# TYPE {family} histogram")
    cumulative = 0
    for index in sorted(buckets):
        cumulative += buckets[index]
        le = {"le": f"{bucket_upper_s(index):.6e}"}
        if labels:
            le.update(labels)
        lines.append(f"{family}_bucket{_labels(le)} {cumulative}")
    inf = {"le": "+Inf"}
    if labels:
        inf.update(labels)
    count = int(state.get("count", 0) or 0)
    lines.append(f"{family}_bucket{_labels(inf)} {count}")
    lines.append(
        f"{family}_sum{_labels(labels)} "
        f"{_num(state.get('total_s', 0.0) or 0.0)}"
    )
    lines.append(f"{family}_count{_labels(labels)} {count}")
    return lines


def render_exposition(
    metrics_state: Optional[Dict[str, Any]] = None,
    *,
    extra_counters: Optional[Mapping[str, Any]] = None,
    gauges: Optional[Iterable[Gauge]] = None,
    advice_family: str = "advice_latency",
    advice_command: str = "observe",
) -> str:
    """Render one scrape of the Prometheus text format.

    ``metrics_state`` is ``ServiceMetrics.to_state()`` (a bare server's
    own, or the gateway's fleet merge).  ``extra_counters`` layer on
    counters the metrics object does not own (gateway failovers, breaker
    trips); the caller is responsible for prefixing any name that would
    collide.  ``gauges`` are ``(family, labels, value)`` samples —
    repeated families are grouped under one ``# TYPE`` header.
    """
    state = metrics_state or {}
    counters: Dict[str, Any] = dict(state.get("counters", {}) or {})
    for name, value in (extra_counters or {}).items():
        counters[name] = value
    lines: List[str] = []

    command_latency: Dict[str, Any] = state.get("command_latency", {}) or {}
    lines += _histogram_lines(
        advice_family,
        command_latency.get(advice_command),
        help_text="OBSERVE (advice) service latency in seconds.",
    )

    for name in sorted(counters):
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_num(counters[name])}")

    outcomes: Dict[str, Any] = state.get("outcomes", {}) or {}
    if outcomes:
        lines.append("# TYPE advice_outcomes counter")
        for outcome in sorted(outcomes):
            lines.append(
                f"advice_outcomes{_labels({'outcome': outcome})} "
                f"{_num(outcomes[outcome])}"
            )

    others = sorted(
        command for command in command_latency if command != advice_command
    )
    if others:
        lines.append("# TYPE command_calls counter")
        for command in others:
            hist = command_latency[command] or {}
            lines.append(
                f"command_calls{_labels({'command': command})} "
                f"{_num(hist.get('count', 0) or 0)}"
            )
        lines.append("# TYPE command_seconds counter")
        for command in others:
            hist = command_latency[command] or {}
            lines.append(
                f"command_seconds{_labels({'command': command})} "
                f"{_num(hist.get('total_s', 0.0) or 0.0)}"
            )

    per_tenant: Dict[str, Any] = state.get("per_tenant", {}) or {}
    if per_tenant:
        lines.append("# TYPE tenant_counter counter")
        for tenant in sorted(per_tenant):
            for counter in sorted(per_tenant[tenant]):
                labels = {"tenant": tenant, "counter": counter}
                lines.append(
                    f"tenant_counter{_labels(labels)} "
                    f"{_num(per_tenant[tenant][counter])}"
                )

    grouped: Dict[str, List[Tuple[Optional[Mapping[str, Any]], float]]] = {}
    for family, labels, value in gauges or ():
        grouped.setdefault(family, []).append((labels, value))
    for family in sorted(grouped):
        lines.append(f"# TYPE {family} gauge")
        for labels, value in grouped[family]:
            lines.append(f"{family}{_labels(labels)} {_num(value)}")

    return "\n".join(lines) + "\n"
