"""Distributed request tracing: spans, deterministic sampling, NDJSON.

The serving stack emits *spans* — flat one-line records of a named stage
(``gateway.worker_rpc``, ``worker.predictor_step``) tied to a trace id
that rides protocol v3's additive ``trace`` field from client to gateway
to worker.  Three properties matter more than features:

* **Determinism.**  Trace ids (:func:`derive_trace_id`) and the
  head-based sampling decision (:func:`trace_fraction`) are pure
  functions of ``(seed, key)``, so a campaign replay traces the same
  sessions every run and bundle hashes stay byte-identical — trace data
  never feeds the hash, and the sampling never perturbs scheduling.
* **Bounded memory.**  Spans land in a fixed-capacity buffer.  With a
  trace directory configured the buffer flushes to disk when full; with
  none it degrades to a ring that drops the oldest span and counts the
  drop.
* **Cheap absence.**  Components hold an ``Optional[Tracer]``; a single
  ``None`` check is the whole cost when tracing is off.

Trace files are NDJSON — one JSON object per line, one file per
component (``gateway.ndjson``, ``w0.ndjson``, ``client.ndjson``) — so a
fleet's trace directory reassembles into per-request timelines with
nothing fancier than :func:`read_spans` and a sort on ``(trace, seq)``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import Counter, deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["Tracer", "derive_trace_id", "trace_fraction", "read_spans"]

#: Default span-buffer capacity; at ~160 bytes a span this bounds a
#: tracer to well under a megabyte.
DEFAULT_CAPACITY = 4096


def derive_trace_id(seed: int, key: str) -> str:
    """A 16-hex-digit trace id, a pure function of ``(seed, key)``.

    The gateway keys on the session id it just minted, replay clients on
    ``c<client>:s<session>`` — either way the same scenario seed yields
    the same ids run after run.
    """
    digest = hashlib.blake2b(
        f"{seed}:trace:{key}".encode("utf-8"), digest_size=8
    )
    return digest.hexdigest()


def trace_fraction(seed: int, trace_id: str) -> float:
    """Map a trace id to a deterministic fraction in ``[0, 1)``.

    Head-based sampling keeps a trace iff its fraction is below the
    sample rate, so every hop that knows the seed agrees on the keep
    decision without coordination.
    """
    digest = hashlib.blake2b(
        f"{seed}:sample:{trace_id}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


class Tracer:
    """One component's span recorder: sample, buffer, flush.

    Thread-safe; the serve path records from the event loop while
    checkpoint/watchdog threads may flush.
    """

    def __init__(
        self,
        component: str,
        *,
        trace_dir: Optional[str] = None,
        sample: float = 1.0,
        seed: int = 0,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.component = component
        self.sample = sample
        self.seed = int(seed)
        self.capacity = capacity
        self.path: Optional[Path] = None
        if trace_dir is not None:
            root = Path(trace_dir)
            root.mkdir(parents=True, exist_ok=True)
            self.path = root / f"{component}.ndjson"
        self._buffer: Deque[Dict[str, Any]] = deque()
        self._lock = threading.Lock()
        self._seq = 0
        self.spans_dropped = 0
        self.spans_flushed = 0
        self._by_span: Counter = Counter()
        # JSON encoding is the expensive part of a flush; cache one
        # encoder and do the work on a writer thread (chained via
        # ``_writer`` so batches land in seq order) to keep it off the
        # serving event loop.
        self._encode = json.JSONEncoder(
            sort_keys=True, separators=(",", ":")
        ).encode
        self._writer: Optional[threading.Thread] = None

    # -- sampling -----------------------------------------------------

    def new_trace_id(self, key: str) -> str:
        return derive_trace_id(self.seed, key)

    def sampled(self, trace_id: str) -> bool:
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return trace_fraction(self.seed, trace_id) < self.sample

    # -- recording ----------------------------------------------------

    def record(
        self,
        trace_id: str,
        span: str,
        start_s: float,
        duration_s: float,
        **fields: Any,
    ) -> None:
        """Buffer one span; flushes (or drops the oldest) when full.

        ``start_s`` is a local ``perf_counter`` reading — meaningful for
        ordering and deltas within one component, not across processes;
        cross-component ordering comes from ``(trace, seq)`` and the
        stage names themselves.

        The hot path buffers a raw tuple; dict assembly, rounding, and
        JSON encoding all happen at flush time on the writer thread, so
        a traced OBSERVE pays little more than a lock and an append.
        """
        with self._lock:
            self._seq += 1
            if len(self._buffer) >= self.capacity:
                if self.path is not None:
                    self._flush_locked()
                else:
                    self._buffer.popleft()
                    self.spans_dropped += 1
            self._buffer.append(
                (trace_id, span, start_s, duration_s, fields, self._seq)
            )

    @property
    def spans_recorded(self) -> int:
        """Total spans ever recorded (flushed + buffered + dropped).

        Every :meth:`record` stamps a fresh ``seq``, so the sequence
        counter *is* the recorded count — no second counter on the hot
        path.  Cumulative; survives :meth:`close`.
        """
        return self._seq

    def _record_dict(self, entry: tuple) -> Dict[str, Any]:
        trace_id, span, start_s, duration_s, fields, seq = entry
        record: Dict[str, Any] = {
            "trace": trace_id,
            "span": span,
            "ts": round(start_s, 6),
            "dur_us": round(duration_s * 1e6, 2),
        }
        if fields:
            record.update(fields)
        record["seq"] = seq
        return record

    def _format_entry(self, entry: tuple) -> str:
        """One NDJSON line straight from a buffered tuple — the fixed
        head is f-string-formatted without ever building the dict; only
        the variable ``fields`` tail goes through :meth:`_format`'s
        per-type dispatch (falling back to ``json`` on exotic values)."""
        trace_id, span, start_s, duration_s, fields, seq = entry
        if '"' in trace_id or "\\" in trace_id:
            # Foreign trace ids arrive off the wire unvalidated; anything
            # that would break the f-string JSON goes the slow safe way.
            return self._encode(self._record_dict(entry))
        head = (
            f'{{"trace":"{trace_id}","span":"{span}"'
            f',"ts":{round(start_s, 6)!r}'
            f',"dur_us":{round(duration_s * 1e6, 2)!r}'
        )
        if not fields:
            return f'{head},"seq":{seq}}}'
        parts = []
        for key, value in fields.items():
            kind = type(value)
            if kind is str:
                if '"' in value or "\\" in value:
                    return self._encode(self._record_dict(entry))
                parts.append(f'"{key}":"{value}"')
            elif kind is bool:
                parts.append(f'"{key}":{"true" if value else "false"}')
            elif kind is int or kind is float:
                parts.append(f'"{key}":{value!r}')
            else:
                return self._encode(self._record_dict(entry))
        return f'{head},{",".join(parts)},"seq":{seq}}}'

    def _write_batch(
        self, batch: List[tuple],
        after: Optional[threading.Thread],
    ) -> None:
        if after is not None:
            after.join()
        lines = "\n".join(map(self._format_entry, batch))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(lines + "\n")
        with self._lock:
            self.spans_flushed += len(batch)
            # Per-stage accounting happens here, off the hot path.
            self._by_span.update(entry[1] for entry in batch)

    def timed(self, trace_id: str, span: str, **fields: Any) -> "_SpanTimer":
        """``with tracer.timed(tid, "gateway.worker_rpc"): ...``"""
        return _SpanTimer(self, trace_id, span, fields)

    # -- draining -----------------------------------------------------

    def _flush_locked(self) -> None:
        """Hand the buffered batch to a writer thread (lock held).

        The recording side pays only for the list copy; encoding and the
        file append happen off-thread, chained on the previous batch's
        writer so the NDJSON file stays in seq order.
        """
        if self.path is None or not self._buffer:
            return
        batch = list(self._buffer)
        self._buffer.clear()
        writer = threading.Thread(
            target=self._write_batch, args=(batch, self._writer),
            name=f"trace-flush-{self.component}", daemon=True,
        )
        self._writer = writer
        writer.start()

    def flush(self) -> None:
        """Write every buffered span to the NDJSON sink (if any), and
        wait until all pending batches are on disk."""
        with self._lock:
            self._flush_locked()
            writer = self._writer
            self._writer = None
        if writer is not None:
            writer.join()

    def close(self) -> None:
        self.flush()

    def spans(self) -> List[Dict[str, Any]]:
        """Buffered (not yet flushed) spans, oldest first."""
        with self._lock:
            entries = list(self._buffer)
        out = []
        for entry in entries:
            record = self._record_dict(entry)
            record["component"] = self.component
            out.append(record)
        return out

    def summary(self) -> Dict[str, Any]:
        """Per-stage span counts plus buffer accounting — safe to ship
        in campaign ``results.json`` (never hash-covered)."""
        with self._lock:
            # _by_span is maintained at flush time; spans still sitting
            # in the buffer (or ring-buffered with no sink) are counted
            # here so the summary never under-reports.
            by_span = Counter(self._by_span)
            by_span.update(entry[1] for entry in self._buffer)
            return {
                "component": self.component,
                "sample": self.sample,
                "seed": self.seed,
                "spans_recorded": self.spans_recorded,
                "spans_flushed": self.spans_flushed,
                "spans_dropped": self.spans_dropped,
                "by_span": dict(sorted(by_span.items())),
            }


class _SpanTimer:
    __slots__ = ("_tracer", "_trace_id", "_span", "_fields", "_t0")

    def __init__(self, tracer, trace_id, span, fields) -> None:
        self._tracer = tracer
        self._trace_id = trace_id
        self._span = span
        self._fields = fields
        self._t0 = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        now = time.perf_counter()
        self._tracer.record(
            self._trace_id, self._span, self._t0, now - self._t0,
            **self._fields,
        )


def read_spans(path: str) -> Iterator[Dict[str, Any]]:
    """Yield spans from one ``.ndjson`` file or a whole trace directory.

    Blank lines are skipped; a torn final line (a crashed writer) is
    tolerated and dropped.  The ``component`` comes from the file name
    (``w0.ndjson`` → ``w0``) — the writers deliberately leave it out of
    every line rather than repeat it 4096 times a flush.
    """
    root = Path(path)
    files = (
        sorted(root.glob("*.ndjson")) if root.is_dir() else [root]
    )
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except FileNotFoundError:
            continue
        component = file.stem
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            record.setdefault("component", component)
            yield record
