"""Observability: distributed tracing, metrics exposition, profiling.

Three instruments over one serving stack, built to answer "where does a
reference's 0.15 ms actually go?" without perturbing the answer:

* :mod:`repro.obs.trace` — per-request spans with a trace id that rides
  protocol v3's additive ``trace`` field client -> gateway -> worker,
  deterministic head-based sampling, bounded buffers, NDJSON sinks.
* :mod:`repro.obs.prom` — a Prometheus-text-format renderer over
  ``ServiceMetrics`` state (bare server or fleet-merged), served from
  the STATS path and the ``repro metrics`` CLI.
* :mod:`repro.obs.profile` — opt-in monotonic timers on the engine hot
  path with a module-level no-op guard, surfaced by ``--profile``.
* :mod:`repro.obs.top` — the ``repro top`` live terminal view over
  fleet STATS.

Nothing in here is imported by the hot path unless switched on; the
whole package costs one ``None`` check (tracing) or one module-attribute
read (profiling) when idle.
"""

from repro.obs.trace import Tracer, derive_trace_id, read_spans, trace_fraction
from repro.obs.prom import render_exposition
from repro.obs.top import render_top, run_top
from repro.obs import profile

__all__ = [
    "Tracer",
    "derive_trace_id",
    "read_spans",
    "trace_fraction",
    "render_exposition",
    "render_top",
    "run_top",
    "profile",
]
