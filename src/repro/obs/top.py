"""``repro top``: a live terminal view over server-level STATS.

One STATS round trip per refresh — the same snapshot the Prometheus
exposition renders — formatted for a human watching a serve or fleet
run.  Against a bare server the view shows that worker; against a
gateway it shows fleet totals plus a per-worker table.  Rates
(advice/s) come from counter deltas between consecutive snapshots, so
the first frame shows totals only.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["render_top", "run_top"]


def _fmt_bytes(n: Any) -> str:
    try:
        value = float(n)
    except (TypeError, ValueError):
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GiB"


def _rate(
    current: Dict[str, Any],
    prev: Optional[Dict[str, Any]],
    key: str,
    interval_s: Optional[float],
) -> str:
    if prev is None or not interval_s or interval_s <= 0:
        return "-"
    try:
        delta = float(current.get(key, 0)) - float(prev.get(key, 0))
    except (TypeError, ValueError):
        return "-"
    return f"{max(0.0, delta) / interval_s:.1f}/s"


def _latency_cell(metrics: Dict[str, Any]) -> str:
    observe = (metrics.get("command_latency") or {}).get("observe")
    if not observe or not observe.get("count"):
        return "p50=- p99=-"
    return (
        f"p50={observe['p50_ms']:.2f}ms p99={observe['p99_ms']:.2f}ms"
    )


def _accuracy_cell(metrics: Dict[str, Any]) -> str:
    accuracy = metrics.get("advice_accuracy")
    return "-" if accuracy is None else f"{100.0 * accuracy:.1f}%"


def _header(stats: Dict[str, Any]) -> str:
    uptime = stats.get("uptime_s")
    uptime_cell = "-" if uptime is None else f"{float(uptime):.0f}s"
    return (
        f"{stats.get('server', '?')}  pid={stats.get('pid', '-')}  "
        f"proto=v{stats.get('proto_version', stats.get('protocol', '?'))}  "
        f"up={uptime_cell}"
    )


def _server_lines(
    stats: Dict[str, Any],
    prev: Optional[Dict[str, Any]],
    interval_s: Optional[float],
) -> List[str]:
    metrics = stats.get("metrics") or {}
    prev_metrics = (prev or {}).get("metrics") or {}
    lines = [
        _header(stats) + f"  worker={stats.get('worker', '-')}",
        (
            f"sessions live={stats.get('live_sessions', 0)} "
            f"evicted={stats.get('evicted_sessions', 0)}  "
            f"model={_fmt_bytes(stats.get('model_bytes'))}  "
            f"brownout={stats.get('brownout_level', 0)}  "
            f"inflight={stats.get('inflight', 0)}"
        ),
        (
            f"advice issued={metrics.get('advice_issued', 0)} "
            f"({_rate(metrics, prev_metrics, 'advice_issued', interval_s)})  "
            f"accuracy={_accuracy_cell(metrics)}  "
            f"{_latency_cell(metrics)}"
        ),
        (
            f"errors={metrics.get('errors', 0)} "
            f"overload_rejections={metrics.get('overload_rejections', 0)} "
            f"tenants_rejected={metrics.get('tenants_rejected', 0)}"
        ),
    ]
    tenants = stats.get("tenants") or {}
    for name, gauges in sorted(tenants.items()):
        lines.append(
            f"  tenant {name}: sessions={gauges.get('sessions', 0)} "
            f"model={_fmt_bytes(gauges.get('model_bytes'))}"
        )
    return lines


def _fleet_lines(
    stats: Dict[str, Any],
    prev: Optional[Dict[str, Any]],
    interval_s: Optional[float],
) -> List[str]:
    fleet = stats.get("fleet") or {}
    prev_fleet = (prev or {}).get("fleet") or {}
    gateway = stats.get("gateway") or {}
    lines = [
        _header(stats) + f"  workers={stats.get('workers', 0)}",
        (
            f"fleet advice={fleet.get('advice_issued', 0)} "
            f"({_rate(fleet, prev_fleet, 'advice_issued', interval_s)})  "
            f"accuracy={_accuracy_cell(fleet)}  "
            f"{_latency_cell(fleet)}"
        ),
        (
            f"gateway failovers={gateway.get('failovers_resumed', 0)}"
            f"+{gateway.get('failovers_degraded', 0)}d "
            f"lost={gateway.get('sessions_lost', 0)}  "
            f"breakers={gateway.get('breakers_opened', 0)}  "
            f"shed={gateway.get('overload_rejections', 0)}"
        ),
        "  worker       sessions   advice      errors",
    ]
    per_worker = stats.get("per_worker") or {}
    for worker_id in sorted(per_worker):
        metrics = per_worker[worker_id]
        if metrics is None:
            lines.append(f"  {worker_id:<12} (unreachable)")
            continue
        lines.append(
            f"  {worker_id:<12} "
            f"{metrics.get('live_sessions', 0):>8}   "
            f"{metrics.get('advice_issued', 0):>6}      "
            f"{metrics.get('errors', 0):>6}"
        )
    return lines


def render_top(
    stats: Dict[str, Any],
    *,
    prev: Optional[Dict[str, Any]] = None,
    interval_s: Optional[float] = None,
) -> str:
    """Format one STATS snapshot; ``prev`` (the previous snapshot) and
    ``interval_s`` turn monotone counters into rates."""
    if stats.get("server") == "repro.gateway":
        lines = _fleet_lines(stats, prev, interval_s)
    else:
        lines = _server_lines(stats, prev, interval_s)
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    *,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    echo: Callable[[str], None] = print,
) -> None:
    """Poll server-level STATS every ``interval_s`` and echo the view.

    ``iterations`` bounds the loop for scripts and CI (``None`` = until
    interrupted).  One blocking connection is held for the whole run so
    the view costs a single round trip per frame.
    """
    from repro.service.client import ServiceClient

    prev: Optional[Dict[str, Any]] = None
    shown = 0
    with ServiceClient.connect(host, port) as client:
        while iterations is None or shown < iterations:
            stats = client.server_stats()
            frame = render_top(
                stats, prev=prev, interval_s=interval_s if prev else None
            )
            echo(frame)
            echo("")
            prev = stats
            shown += 1
            if iterations is not None and shown >= iterations:
                break
            try:
                time.sleep(interval_s)
            except KeyboardInterrupt:
                break
