"""Opt-in hot-path profiling: a module-level guard, per-stage timers.

The engine's inner loop runs hundreds of thousands of steps a second; a
profiler that costs anything while disabled would show up in every
benchmark it was meant to explain.  The contract:

* callers read the module-level :data:`ENABLED` flag **once per step**
  into a local, and only when it is true call ``perf_counter`` and
  :func:`add` — disabled cost is one attribute load and a falsy branch;
* :func:`add` is allocation-free on the steady path (the stage record
  exists after its first hit) and must never change what the caller
  computes — timers observe the hot path, they are not part of it.

Stage names are dotted: ``engine.step``, ``engine.tree_walk``,
``engine.candidate_selection`` on the simulator; ``client.open`` /
``client.observe`` on the replay side.  ``repro serve --profile`` and
``repro replay --profile`` flip the guard and print
:func:`format_report` on the way out.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = [
    "ENABLED", "enable", "disable", "reset", "add", "report",
    "format_report",
]

#: The no-op guard.  Read it into a local at the top of a hot section;
#: everything else in this module is off the hot path.
ENABLED = False


class _Stage:
    __slots__ = ("calls", "total_s", "max_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0


_stages: Dict[str, _Stage] = {}
_lock = threading.Lock()


def enable() -> None:
    global ENABLED
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


def reset() -> None:
    """Drop accumulated stages (the guard state is left alone)."""
    with _lock:
        _stages.clear()


def add(stage: str, duration_s: float) -> None:
    """Fold one timed interval into ``stage``.

    Only called behind the guard; the GIL makes the individual updates
    safe enough for a profiler (a racing increment can shave a count,
    never corrupt the dict — creation takes the lock).
    """
    record = _stages.get(stage)
    if record is None:
        with _lock:
            record = _stages.setdefault(stage, _Stage())
    record.calls += 1
    record.total_s += duration_s
    if duration_s > record.max_s:
        record.max_s = duration_s


def report() -> Dict[str, Dict[str, float]]:
    """Snapshot ``{stage: {calls, total_s, avg_us, max_us}}``."""
    with _lock:
        stages = dict(_stages)
    out: Dict[str, Dict[str, float]] = {}
    for name, record in stages.items():
        calls = record.calls
        out[name] = {
            "calls": calls,
            "total_s": round(record.total_s, 6),
            "avg_us": round(record.total_s / calls * 1e6, 3) if calls else 0.0,
            "max_us": round(record.max_s * 1e6, 3),
        }
    return out


def format_report(title: str = "profile") -> str:
    """An aligned per-stage table, heaviest total first."""
    stages = report()
    if not stages:
        return f"{title}: no stages recorded (was --profile on?)"
    order = sorted(
        stages.items(), key=lambda item: item[1]["total_s"], reverse=True
    )
    width = max(len(name) for name in stages)
    lines = [
        f"{title}: per-stage breakdown",
        f"  {'stage'.ljust(width)}  {'calls':>9}  {'total_s':>10}  "
        f"{'avg_us':>10}  {'max_us':>10}",
    ]
    for name, row in order:
        lines.append(
            f"  {name.ljust(width)}  {int(row['calls']):>9}  "
            f"{row['total_s']:>10.4f}  {row['avg_us']:>10.2f}  "
            f"{row['max_us']:>10.2f}"
        )
    return "\n".join(lines)
