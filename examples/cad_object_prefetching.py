#!/usr/bin/env python3
"""CAD scenario: prefetching object references with zero sequentiality.

A design tool walks an object database along recurring traversal paths, but
the objects' block addresses carry no sequential structure - OS readahead
is useless.  This is exactly where the paper's probability-tree prediction
pays off: the tree learns the traversal paths online and the cost-benefit
analysis prefetches along them only when a buffer is worth spending.

The example also reproduces the memory-budget result (Figure 13): a
moderately sized tree (tens of thousands of nodes, ~1 MB) performs as well
as an unbounded one, because the LRU-of-substrings eviction keeps the
active patterns resident.

Run:  python examples/cad_object_prefetching.py [--refs 100000]
"""

import argparse

from repro import PAPER_PARAMS, make_policy, make_trace, simulate
from repro.analysis.tables import render_table
from repro.core.tree import PAPER_NODE_BYTES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=100_000)
    parser.add_argument("--cache", type=int, default=1024)
    parser.add_argument("--seed", type=int, default=1999)
    args = parser.parse_args()

    trace = make_trace("cad", num_references=args.refs, seed=args.seed)
    blocks = trace.as_list()
    print(f"CAD workload: {len(blocks)} object references, "
          f"{trace.unique_blocks} objects, "
          f"sequentiality {trace.sequentiality():.2%} (readahead-proof)\n")

    base = simulate(PAPER_PARAMS, make_policy("no-prefetch"), blocks, args.cache)
    nl = simulate(PAPER_PARAMS, make_policy("next-limit"), blocks, args.cache)
    print(f"plain LRU miss rate:            {base.miss_rate:6.2f}%")
    print(f"with sequential readahead:      {nl.miss_rate:6.2f}%   "
          f"(no help - nothing is sequential)\n")

    print("tree policy under different tree memory budgets:")
    rows = []
    for budget in (1024, 8192, 32768, None):
        kwargs = {"max_tree_nodes": budget} if budget else {}
        st = simulate(
            PAPER_PARAMS, make_policy("tree", **kwargs), blocks, args.cache
        )
        label = f"{budget} nodes" if budget else "unbounded"
        mem = (budget or st.extra["tree_nodes"]) * PAPER_NODE_BYTES / 1024
        rows.append([
            label,
            f"{mem:.0f} KB",
            round(st.miss_rate, 2),
            round(100 * (base.miss_rate - st.miss_rate) / base.miss_rate, 1),
            round(st.prefetch_cache_hit_rate, 1),
            round(st.prediction_accuracy, 1),
        ])
    print(render_table(
        ["tree budget", "tree_mem", "miss_%", "reduction_%", "pf_hit_%",
         "predictable_%"],
        rows,
    ))
    print("\n~1 MB of prefetch-tree memory captures the full benefit "
          "(paper Section 9.3: 32K nodes x 40 B).")


if __name__ == "__main__":
    main()
