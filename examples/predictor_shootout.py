#!/usr/bin/env python3
"""Predictor shootout: swap the prediction model, keep everything else.

The cost-benefit machinery doesn't care where probabilities come from.
This example runs the same workload and cache through five prediction
models - the paper's LZ78 tree, a PPM-style multi-order context model,
Griffioen & Appleton's probability graph, a first-order Markov chain, and
a last-successor table - plus the two reference points: no prefetching and
TIP-style informed prefetching with perfect hints.

Run:  python examples/predictor_shootout.py [--trace cad] [--refs 60000]
"""

import argparse

from repro import PAPER_PARAMS, TRACE_NAMES, make_policy, make_trace, simulate
from repro.analysis.tables import render_table

LADDER = (
    "no-prefetch",
    "cb-lz",
    "cb-last-successor",
    "cb-markov",
    "cb-prob-graph",
    "cb-ppm",
    "tree",              # the paper's full policy (multi-level candidates)
    "perfect-selector",  # oracle selection over the tree's predictions
    "informed",          # perfect hints: the deterministic optimum
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", choices=TRACE_NAMES, default="cad")
    parser.add_argument("--refs", type=int, default=60_000)
    parser.add_argument("--cache", type=int, default=1024)
    parser.add_argument("--seed", type=int, default=1999)
    args = parser.parse_args()

    trace = make_trace(args.trace, num_references=args.refs, seed=args.seed)
    blocks = trace.as_list()
    print(f"{trace.name}: {len(blocks)} refs, {trace.unique_blocks} blocks, "
          f"sequentiality {trace.sequentiality():.1%}\n")

    rows = []
    base_miss = None
    for name in LADDER:
        st = simulate(PAPER_PARAMS, make_policy(name), blocks, args.cache)
        if base_miss is None:
            base_miss = st.miss_rate
        rows.append([
            name,
            round(st.miss_rate, 2),
            round(100 * (base_miss - st.miss_rate) / max(base_miss, 1e-9), 1),
            round(st.prediction_accuracy, 1),
            round(st.prefetch_cache_hit_rate, 1),
            st.extra.get("predictor_memory_items",
                         st.extra.get("tree_nodes", "-")),
        ])

    print(render_table(
        ["scheme", "miss_%", "reduction_%", "predictable_%", "pf_hit_%",
         "model_size"],
        rows,
        title=f"prediction models on {trace.name} (cache {args.cache})",
    ))
    print("\n'informed' is the deterministic optimum (applications disclose "
          "their accesses);\nthe gap between any predictor and it is the "
          "price of having to guess.")


if __name__ == "__main__":
    main()
