#!/usr/bin/env python3
"""File-server scenario: combining readahead with predictive prefetching.

The paper's motivating deployment: a file server whose disk stream mixes
sequential file bodies (where classic one-block readahead shines) with
recurring non-sequential request patterns (where only history-based
prediction helps).  This example shows why the *combination* -
tree-next-limit - wins: the two schemes fix different, mutually exclusive
classes of misses, so their gains add (paper Section 9.1).

It also demonstrates the timing model: simulated elapsed time, CPU stall
time, and the extra disk traffic the prefetcher pays.

Run:  python examples/file_server_readahead.py [--refs 80000] [--cache 1024]
"""

import argparse

from repro import PAPER_PARAMS, make_policy, make_trace, simulate
from repro.analysis.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=80_000)
    parser.add_argument("--cache", type=int, default=1024)
    parser.add_argument("--seed", type=int, default=1999)
    args = parser.parse_args()

    trace = make_trace("snake", num_references=args.refs, seed=args.seed)
    blocks = trace.as_list()
    print(f"file-server workload: {len(blocks)} disk reads, "
          f"{trace.unique_blocks} distinct blocks, "
          f"sequentiality {trace.sequentiality():.1%}")
    print(f"cache: {args.cache} buffers "
          f"({args.cache * PAPER_PARAMS.block_size // (1024 * 1024)} MB)\n")

    rows = []
    baseline_time = None
    for name in ("no-prefetch", "next-limit", "tree", "tree-next-limit"):
        st = simulate(PAPER_PARAMS, make_policy(name), blocks, args.cache)
        if baseline_time is None:
            baseline_time = st.elapsed_time
        rows.append([
            name,
            round(st.miss_rate, 2),
            round(st.prefetch_cache_hit_rate, 1),
            round(st.mean_access_time, 3),
            round(100 * (baseline_time - st.elapsed_time) / baseline_time, 1),
            round(st.traffic_increase, 1),
            round(st.stall_time, 1),
        ])

    print(render_table(
        ["policy", "miss_%", "pf_hit_%", "ms/access", "time_saved_%",
         "extra_traffic_%", "stall_ms"],
        rows,
        title="file server, per policy",
    ))

    base, nl, tree, both = (r[1] for r in rows)
    print(f"\nnext-limit fixes sequential-read misses:   "
          f"{base:.1f}% -> {nl:.1f}%")
    print(f"tree fixes recurring-pattern misses:       "
          f"{base:.1f}% -> {tree:.1f}%")
    print(f"combined, the gains are roughly additive:  "
          f"{base:.1f}% -> {both:.1f}% "
          f"(sum of individual gains: {base - (base - nl) - (base - tree):.1f}%)")


if __name__ == "__main__":
    main()
