#!/usr/bin/env python3
"""Build a custom workload from the generator components and persist it.

Shows the library's extensibility surface:

* compose a reference stream from the building blocks (file scans, replayed
  chains, Zipf point reads, cold sequential reads) with your own mixture;
* save it to disk (text or .npz) and load it back;
* run any policy on it, including a custom tuning of the tree policy.

This is the path for evaluating the prefetcher against *your* workload: we
also accept any file with one integer block id per line.

Run:  python examples/custom_workload.py [--out /tmp/my.trace]
"""

import argparse
from itertools import islice

import numpy as np

from repro import PAPER_PARAMS, Trace, make_policy, simulate
from repro.analysis.tables import render_table
from repro.traces import io as trace_io
from repro.traces.synthetic.components import (
    chain_stream,
    cold_scan_stream,
    point_stream,
    scan_stream,
)
from repro.traces.synthetic.mixer import iter_interleaved
from repro.traces.synthetic.sequential import FileSpace, random_file_sizes
from repro.traces.synthetic.zipf import ZipfSampler


def build_workload(n_refs: int, seed: int) -> Trace:
    """A build server: source scans, dependency chains, log appends."""
    rng = np.random.default_rng(seed)

    sources = FileSpace(random_file_sizes(rng, 400, median_blocks=6))
    streams = [
        # Re-reading source files (popular headers dominate).
        scan_stream(rng, sources, ZipfSampler(400, 1.1, rng, shuffle=True)),
        # The link order: a long, fixed, non-sequential chain of objects.
        chain_stream(rng, 100_000, n_chains=40, chain_length=64,
                     alpha=0.6, noise=0.02),
        # Metadata lookups.
        point_stream(rng, 300_000, 800, 1.0),
        # Freshly written build outputs, read back once, sequentially.
        cold_scan_stream(rng, 10_000_000, mean_run=20.0),
    ]
    weights = [0.45, 0.25, 0.10, 0.20]
    merged = iter_interleaved(rng, streams, weights=weights, mean_burst=24.0)
    return Trace(
        name="buildserver",
        blocks=list(islice(merged, n_refs)),
        description="synthetic build-server workload (custom example)",
        seed=seed,
        params={"weights": weights},
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cache", type=int, default=512)
    parser.add_argument("--out", default="/tmp/buildserver.trace")
    args = parser.parse_args()

    trace = build_workload(args.refs, args.seed)
    trace_io.save(trace, args.out)
    loaded = trace_io.load(args.out)
    assert loaded.as_list() == trace.as_list()
    print(f"built + saved + reloaded {loaded.name!r}: "
          f"{loaded.num_references} refs -> {args.out}\n")

    rows = []
    for label, policy in (
        ("no-prefetch", make_policy("no-prefetch")),
        ("next-limit", make_policy("next-limit")),
        ("tree (default)", make_policy("tree")),
        # A custom tuning: wider candidate frontier, bounded tree memory.
        ("tree (64 cands, 16K nodes)",
         make_policy("tree", max_candidates=64, max_tree_nodes=16_384)),
        ("tree-next-limit", make_policy("tree-next-limit")),
    ):
        st = simulate(PAPER_PARAMS, policy, loaded.as_list(), args.cache)
        rows.append([label, round(st.miss_rate, 2),
                     round(st.prefetch_cache_hit_rate, 1),
                     round(st.mean_access_time, 3)])

    print(render_table(
        ["policy", "miss_%", "pf_hit_%", "ms/access"], rows,
        title=f"build-server workload, cache {args.cache} blocks",
    ))


if __name__ == "__main__":
    main()
