#!/usr/bin/env python3
"""Drive the online prefetch advisory service end to end.

Spins up the advisory daemon in-process (``BackgroundServer`` — the same
server ``python -m repro serve`` runs), connects the blocking client,
streams a file-server-like reference stream through a session, and acts on
the advice the way a real readahead layer would: every OBSERVE reply lists
the blocks worth fetching ahead of demand *right now*, chosen by the
paper's cost-benefit rule.

Run:  python examples/service_readahead.py [--refs 20000] [--cache 1024]
"""

import argparse

from repro.service import BackgroundServer, ServiceClient
from repro.traces.synthetic import make_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=20_000)
    parser.add_argument("--cache", type=int, default=1024)
    parser.add_argument("--trace", default="sitar",
                        help="workload to stream (default: sitar)")
    args = parser.parse_args()

    trace = make_trace(args.trace, num_references=args.refs)
    print(f"streaming {trace.num_references} references of {args.trace!r} "
          f"through a live advisory session\n")

    with BackgroundServer() as server:
        print(f"daemon listening on 127.0.0.1:{server.port}")
        with ServiceClient.connect(port=server.port) as client:
            session = client.open(policy="tree-next-limit",
                                  cache_size=args.cache)
            print(f"opened session {session} "
                  f"(policy tree-next-limit, {args.cache} blocks)\n")

            shown = 0
            for block in trace:
                advice = client.observe(session, int(block))
                # A real OS would issue reads here; we print the first few.
                if advice.prefetch and shown < 5:
                    shown += 1
                    picks = ", ".join(
                        f"{d.block} (p={d.probability:.2f}, depth {d.depth},"
                        f" {d.tag})"
                        for d in advice.prefetch
                    )
                    print(f"period {advice.period:>6}: saw block "
                          f"{advice.block} -> prefetch {picks}")

            snapshot = client.stats(session)
            final = client.close_session(session)

        print(f"\nafter {final['accesses']} references:")
        print(f"  miss rate               {final['miss_rate']:.1f}%")
        print(f"  prefetches issued       {final['prefetches_issued']}")
        print(f"  prefetch hit rate       "
          f"{final['prefetch_cache_hit_rate']:.1f}%")
        print(f"  mid-run snapshot agreed: "
              f"{snapshot['accesses'] == final['accesses']}")

        metrics = server.metrics_snapshot()
        observe = metrics["command_latency"]["observe"]
        accuracy = metrics["advice_accuracy"]
        print("\nservice metrics:")
        print(f"  advice issued           {metrics['advice_issued']}")
        print(f"  prefetches recommended  {metrics['prefetches_recommended']}")
        print(f"  observe p50 / p99       {observe['p50_ms']:.3f} / "
              f"{observe['p99_ms']:.3f} ms")
        if accuracy is not None:
            print(f"  advice accuracy         {100 * accuracy:.1f}% of "
                  "disk-bound references served from prefetched blocks")


if __name__ == "__main__":
    main()
