#!/usr/bin/env python3
"""Quickstart: simulate cost-benefit predictive prefetching in ~20 lines.

Builds a CAD-like object-reference workload (repeating traversals, no
sequential structure), then compares a plain LRU cache against the paper's
*tree* policy - an LZ prefetch tree choosing candidates, and the
cost-benefit analysis (benefit of prefetching vs cost of evicting) deciding
whether to fetch them.

Run:  python examples/quickstart.py
"""

from repro import PAPER_PARAMS, make_policy, make_trace, simulate

CACHE_BLOCKS = 1024  # 8 MB of 8 KB buffers

trace = make_trace("cad", num_references=60_000)
print(f"workload: {trace.description}")
print(f"  {trace.num_references} references over {trace.unique_blocks} blocks; "
      f"sequentiality {trace.sequentiality():.1%}\n")

baseline = simulate(PAPER_PARAMS, make_policy("no-prefetch"),
                    trace.as_list(), CACHE_BLOCKS)
tree = simulate(PAPER_PARAMS, make_policy("tree"),
                trace.as_list(), CACHE_BLOCKS)

print(f"{'':24s} {'no-prefetch':>12s} {'tree':>12s}")
print(f"{'miss rate':24s} {baseline.miss_rate:11.2f}% {tree.miss_rate:11.2f}%")
print(f"{'mean access time (ms)':24s} {baseline.mean_access_time:12.3f} "
      f"{tree.mean_access_time:12.3f}")
print(f"{'disk reads':24s} {baseline.disk_fetches:12d} {tree.disk_fetches:12d}")
print()
reduction = 100 * (baseline.miss_rate - tree.miss_rate) / baseline.miss_rate
print(f"the prefetch tree predicted {tree.prediction_accuracy:.0f}% of accesses "
      f"and cut the miss rate by {reduction:.0f}%")
print(f"prefetched blocks were used {tree.prefetch_cache_hit_rate:.0f}% of the "
      f"time at a cost of {tree.traffic_increase:.0f}% extra disk traffic")
