#!/usr/bin/env python3
"""Compare all of the paper's prefetching schemes on one workload.

A miniature Figure 6 + 15 + 17: sweeps the cache size and prints the miss
rate of every scheme, including the parametric ones (at fixed parameters)
and the perfect-selector oracle.

Run:  python examples/compare_policies.py [--trace cad] [--refs 60000]
      python examples/compare_policies.py --trace sitar --sizes 128 512 2048
"""

import argparse

from repro import PAPER_PARAMS, TRACE_NAMES, make_policy, make_trace, simulate
from repro.analysis.tables import render_series

SCHEMES = (
    ("no-prefetch", {}),
    ("next-limit", {}),
    ("tree", {}),
    ("tree-next-limit", {}),
    ("tree-lvc", {}),
    ("tree-threshold", {"threshold": 0.05}),
    ("tree-children", {"num_children": 3}),
    ("perfect-selector", {}),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", choices=TRACE_NAMES, default="cad")
    parser.add_argument("--refs", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=1999)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[128, 256, 512, 1024, 2048]
    )
    args = parser.parse_args()

    trace = make_trace(args.trace, num_references=args.refs, seed=args.seed)
    blocks = trace.as_list()
    print(f"{trace.name}: {trace.description}")
    print(f"{len(blocks)} references, {trace.unique_blocks} unique blocks, "
          f"sequentiality {trace.sequentiality():.1%}\n")

    series = {}
    for name, kwargs in SCHEMES:
        misses = []
        for size in args.sizes:
            stats = simulate(
                PAPER_PARAMS, make_policy(name, **kwargs), blocks, size
            )
            misses.append(round(stats.miss_rate, 2))
        label = name
        if kwargs:
            label += "(" + ",".join(str(v) for v in kwargs.values()) + ")"
        series[label] = misses

    print(render_series("cache_blocks", args.sizes, series,
                        title="miss rate (%) by policy and cache size"))
    print("\nperfect-selector is an oracle (knows the next access); the gap "
          "between it and tree is selection headroom (paper Section 9.5).")


if __name__ == "__main__":
    main()
