"""Table 3: how often the last visited child is revisited.

Paper: cello 24.37%, snake 38.49%, CAD 68.61%, sitar 73.61%.  We report
the all-node rate plus the non-root rate (short traces inflate the share
of never-repeating root opportunities) and check the paper's ordering.
"""

from repro.analysis.experiments import run_table3


def test_table3_lvc_repeats(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_table3(ctx), rounds=1, iterations=1)
    record(result)
    data = result.data
    # Paper ordering: cello < snake < {CAD, sitar}, in both measures.
    for key in ("all_nodes", "nonroot"):
        assert data["cello"][key] < data["snake"][key]
        assert data["snake"][key] < data["cad"][key]
        assert data["snake"][key] < data["sitar"][key]
    # CAD/sitar: strong path repetition (paper ~69-74%).
    assert data["cad"]["nonroot"] > 60.0
    assert data["sitar"]["nonroot"] > 60.0
