"""Validating the simulator against the paper's closed-form timing model.

The engine implements the Figure 3/5 timelines mechanically (clock, disk
arrival times, per-period charges); Equations 3-6 are the *analytic* model
of the same physics.  If both are right they must agree where the analytic
model's assumptions hold.  Two checks:

1. **no-prefetch access period** (Figure 3a): the measured mean time per
   access must equal ``T_cpu + T_hit + missrate*(T_driver + T_disk)``
   exactly (every term is deterministic).
2. **informed prefetching stall** (Eq. 6, one hint per period, depth d):
   on a fully sequential cold workload with ``max_lookahead`` pinning the
   prefetch depth, the measured stall per prefetched block must track
   ``max(T_disk/d - (T_cpu + T_hit + s*T_driver), 0)`` with ``s = 1`` up to
   the one-period bookkeeping slack the paper's averaging argument admits.
"""

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table
from repro.core import costbenefit
from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator


def test_validation_no_prefetch_timing(benchmark, ctx, record):
    def sweep():
        rows = []
        for trace_name in ("cello", "cad"):
            blocks = ctx.trace(trace_name).as_list()[:20_000]
            for cache in (256, 1024):
                sim = Simulator(PAPER_PARAMS, make_policy("no-prefetch"), cache)
                st = sim.run(blocks)
                miss = st.misses / st.accesses
                analytic = (
                    PAPER_PARAMS.t_cpu
                    + PAPER_PARAMS.t_hit
                    + miss * (PAPER_PARAMS.t_driver + PAPER_PARAMS.t_disk)
                )
                rows.append([
                    trace_name, cache,
                    round(st.mean_access_time, 4), round(analytic, 4),
                ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="validation_timing",
        title="Simulator vs Figure 3(a)'s closed-form access period",
        paper_expectation=(
            "without prefetching each access takes T_cpu + T_hit plus the "
            "miss rate's share of T_driver + T_disk; simulator and formula "
            "must agree to numerical precision"
        ),
        text=render_table(
            ["trace", "cache", "measured_ms", "analytic_ms"], rows,
            title="Validation: no-prefetch access period",
            decimals=4,
        ),
        data={"rows": rows},
    ))
    for trace_name, cache, measured, analytic in rows:
        assert measured == pytest.approx(analytic, rel=1e-9), (trace_name, cache)


def test_validation_stall_model(benchmark, ctx, record):
    """Eq. 6's stall against measurement at pinned prefetch depths."""
    t_cpu = 1.0  # I/O-bound: stalls actually occur
    params = PAPER_PARAMS.with_t_cpu(t_cpu)
    trace = list(range(100_000, 108_000))  # cold, fully sequential

    def sweep():
        rows = []
        for depth in (1, 2, 3, 5, 10):
            sim = Simulator(
                params,
                make_policy("informed", max_lookahead=depth),
                512,
                s_initial=1.0,
            )
            st = sim.run(trace)
            analytic = costbenefit.t_stall(params, depth, 1.0)
            measured = st.stall_time / max(st.prefetch_hits, 1)
            rows.append([
                depth, round(measured, 4), round(analytic, 4),
                round(st.miss_rate, 3),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="validation_stall",
        title="Simulator vs Eq. 6's stall model",
        paper_expectation=(
            "stall per prefetched block = max(T_disk/d - per-period "
            "compute, 0); deeper prefetching hides more of the disk time"
        ),
        text=render_table(
            ["depth", "measured_stall_ms", "eq6_stall_ms", "miss_rate"],
            rows,
            title=f"Validation: stall vs prefetch depth (T_cpu {t_cpu} ms)",
            decimals=4,
        ),
        data={"rows": rows},
    ))
    # Monotone: deeper lookahead never stalls more.
    measured = [r[1] for r in rows]
    assert all(a >= b - 1e-6 for a, b in zip(measured, measured[1:]))
    # Eq. 6 is the per-block *average* approximation of the exact pipeline;
    # the mechanical simulator may differ by at most one per-period compute
    # term (the paper's "on average, only one of d_b accesses will stall"
    # amortisation).
    per_period = params.t_cpu + params.t_hit + 1.0 * params.t_driver
    for depth, got, want, _ in rows:
        assert abs(got - want) <= per_period / max(depth - 0.999, 1) + 0.05, (
            depth, got, want
        )