"""Figure 11: prefetching rate s vs computation time T_cpu (cache 1024).

Paper: s rises with T_cpu at first (longer periods hide more concurrent
I/O, and the demand cache's marginal value shrinks relative to prefetch
benefit) and then flattens - the cost-benefit analysis self-limits.
"""

from repro.analysis.experiments import run_fig11


def test_fig11_tcpu_prefetch_rate(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig11(ctx), rounds=1, iterations=1)
    record(result)
    for trace, series in result.data.items():
        # Plateau: the top of the curve is not at the smallest T_cpu.
        assert max(series) >= series[0], trace
        # Self-limiting: the largest T_cpu is within 2x of the plateau.
        assert series[-1] <= max(series) * 2.0 + 0.1, trace
