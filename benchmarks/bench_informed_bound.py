"""Informed-prefetching (TIP) bound: what perfect hints would buy.

The paper derives its cost-benefit analysis from Patterson's informed
prefetching, where applications disclose their future accesses.  This
bench places every workload on the ladder

    no-prefetch  >=  tree  >=  perfect-selector  >=  informed

quantifying how much of the gap to the deterministic optimum the
*prediction* step loses (tree vs informed) versus the *selection* step
(tree vs perfect-selector): the paper's Sections 9.5/9.6 discussion in one
table.
"""

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table

LADDER = ("no-prefetch", "tree", "perfect-selector", "informed")
CACHES = (256, 1024)


def test_informed_bound(benchmark, ctx, record):
    def sweep():
        rows = []
        for trace in ("cello", "snake", "cad", "sitar"):
            for cache in CACHES:
                misses = [
                    round(ctx.run(trace, policy, cache).miss_rate, 2)
                    for policy in LADDER
                ]
                rows.append([trace, cache, *misses])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="informed_bound",
        title="From no hints to perfect hints",
        paper_expectation=(
            "informed prefetching with deterministic hints eliminates "
            "nearly all misses under the paper's no-congestion model; the "
            "tree-to-informed gap is the total cost of having to *predict*"
        ),
        text=render_table(
            ["trace", "cache", *LADDER], rows,
            title="Miss rate (%) ladder: prediction-free to perfect hints",
        ),
        data={"rows": rows},
    ))
    for row in rows:
        trace, cache, base, tree, oracle, informed = row
        assert tree <= base + 2.0, (trace, cache)
        assert oracle <= tree + 2.0, (trace, cache)
        assert informed <= oracle + 1.0, (trace, cache)
        # TIP with perfect hints and infinite disks: almost no misses.
        assert informed < 2.0, (trace, cache)
