"""Figure 7: fraction of chosen prefetch candidates already cached.

Paper: above ~2048 blocks, over 85% of the blocks the cost-benefit loop
selects already reside in the cache - the working sets fit, which is why
the tree prefetches little at large caches.
"""

from repro.analysis.experiments import run_fig7


def test_fig07_candidates_cached(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig7(ctx), rounds=1, iterations=1)
    record(result)
    for trace, series in result.data.items():
        # Rate rises (or stays flat) as the cache grows.
        assert series[-1] >= series[0] - 5.0, trace
    # At the largest cache most candidates are already resident.
    assert result.data["cad"][-1] > 70.0
    assert result.data["sitar"][-1] > 70.0
