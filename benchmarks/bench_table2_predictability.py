"""Table 2: prediction accuracy of the prefetch tree per trace.

Paper: cello 35.78%, snake 61.50%, CAD 59.90%, sitar 71.39%.  cello is
lowest because its 30MB L1 already captured the locality.  We check the
ordering and coarse magnitudes (our traces are ~30-70x shorter, which
depresses accuracy: the LZ tree is still warming).
"""

from repro.analysis.experiments import run_table2


def test_table2_predictability(benchmark, ctx, record, calibrated):
    result = benchmark.pedantic(lambda: run_table2(ctx), rounds=1, iterations=1)
    record(result)
    acc = result.data
    # Ordering: cello is the least predictable trace (Section 9.4).
    assert acc["cello"] == min(acc.values())
    # Magnitudes: the predictable traces sit in the tens of percent.
    assert acc["cad"] > 30.0
    assert acc["sitar"] > 30.0
    if calibrated:
        assert acc["cad"] > 45.0
        assert acc["sitar"] > 45.0
        assert acc["snake"] > 30.0
        assert 10.0 < acc["cello"] < 50.0
