"""Performance microbenchmarks for the core data structures.

These are conventional pytest-benchmark timings (multiple rounds) for the
hot paths that bound whole-trace simulation throughput: LZ-tree updates,
stack-distance profiling, candidate enumeration, and the end-to-end
simulator step.  They exist so a performance regression in the substrate
shows up as a number, not as a mysteriously slow Figure 6.
"""

import random

from repro.cache.ghost import StackDistanceProfiler
from repro.core.tree import PrefetchTree
from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.traces.synthetic import make_trace


def _mixed_blocks(n=20_000, universe=4_000, seed=0):
    rng = random.Random(seed)
    out = []
    while len(out) < n:
        if rng.random() < 0.5:
            start = rng.randrange(universe)
            out.extend(range(start, start + rng.randrange(2, 16)))
        else:
            out.append(rng.randrange(universe))
    return out[:n]


def test_perf_tree_record(benchmark):
    blocks = _mixed_blocks()

    def build():
        tree = PrefetchTree()
        tree.record_all(blocks)
        return tree.node_count

    nodes = benchmark(build)
    assert nodes > 0


def test_perf_tree_record_bounded(benchmark):
    blocks = _mixed_blocks()

    def build():
        tree = PrefetchTree(max_nodes=4096)
        tree.record_all(blocks)
        return tree.node_count

    nodes = benchmark(build)
    assert nodes <= 4096


def test_perf_stack_distance_profiler(benchmark):
    blocks = _mixed_blocks()

    def profile():
        p = StackDistanceProfiler(max_depth=2048)
        for b in blocks:
            p.record(b)
        return p.references

    refs = benchmark(profile)
    assert refs == len(blocks)


def test_perf_simulator_tree_policy(benchmark, ctx):
    """End-to-end simulator throughput on the CAD workload."""
    blocks = ctx.trace("cad").as_list()[:20_000]

    def run():
        sim = Simulator(PAPER_PARAMS, make_policy("tree"), 1024)
        return sim.run(blocks).misses

    misses = benchmark.pedantic(run, rounds=3, iterations=1)
    assert misses > 0


def test_perf_simulator_no_prefetch(benchmark, ctx):
    blocks = ctx.trace("cad").as_list()[:20_000]

    def run():
        sim = Simulator(PAPER_PARAMS, make_policy("no-prefetch"), 1024)
        return sim.run(blocks).misses

    misses = benchmark.pedantic(run, rounds=3, iterations=1)
    assert misses > 0


def test_perf_trace_generation(benchmark):
    trace = benchmark.pedantic(
        lambda: make_trace("snake", num_references=20_000, seed=7),
        rounds=3,
        iterations=1,
    )
    assert len(trace) == 20_000
