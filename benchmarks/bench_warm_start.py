"""Warm-start benefit: a trained model vs a cold one on the same suffix.

The prefetch tree earns nothing until it has seen the workload — the
paper's results come from runs long enough to amortise that warm-up.
This bench quantifies what persistence buys: train a model on the first
half of a trace, snapshot it through the real codec, warm-start a fresh
session from the snapshot, and serve the second half; compare against a
stone-cold session on the same suffix.

Two signals per workload (cad and sitar, the most and least predictable
of the paper's traces):

* **prefetch-cache hit rate** over the suffix — how many references were
  served by previously issued prefetches;
* **time-to-first-prefetch** — the access period of the first non-empty
  advice, i.e. how long a client waits before the advisor starts helping.

``REPRO_BENCH_WARM_REFS`` (default 20000) sets the full-trace length; the
train/serve split is half and half.
"""

import os

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_series
from repro.service.session import PrefetchSession
from repro.store.codec import read_snapshot, write_snapshot
from repro.store.models import model_snapshot
from repro.traces.synthetic import make_trace

TRACES = ("cad", "sitar")
CACHE_BLOCKS = 1024


def _serve(session, blocks):
    """Run a suffix through a session; return (pf_hit_rate, first_prefetch)."""
    prefetch_hits = 0
    first_prefetch = None
    for period, block in enumerate(blocks, start=1):
        advice = session.observe(block)
        if advice.outcome == "prefetch_hit":
            prefetch_hits += 1
        if first_prefetch is None and advice.prefetch:
            first_prefetch = period
    rate = 100.0 * prefetch_hits / len(blocks)
    return round(rate, 2), first_prefetch or len(blocks)


def _run_one(trace_name, refs, seed, tmp_path):
    blocks = make_trace(trace_name, num_references=refs, seed=seed).as_list()
    split = len(blocks) // 2
    train, suffix = blocks[:split], blocks[split:]

    trainer = PrefetchSession(policy="tree", cache_size=CACHE_BLOCKS)
    for block in train:
        trainer.observe(block)
    path = tmp_path / f"{trace_name}.snap"
    write_snapshot(model_snapshot(trainer.simulator.policy.model()), path)

    warm = PrefetchSession(policy="tree", cache_size=CACHE_BLOCKS,
                           warm_start=read_snapshot(path))
    cold = PrefetchSession(policy="tree", cache_size=CACHE_BLOCKS)
    return {"warm": _serve(warm, suffix), "cold": _serve(cold, suffix)}


def _run_battery(tmp_path):
    refs = int(os.environ.get("REPRO_BENCH_WARM_REFS", "20000"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1999"))
    return refs, {
        name: _run_one(name, refs, seed, tmp_path) for name in TRACES
    }


def test_warm_start(benchmark, record, tmp_path):
    refs, results = benchmark.pedantic(
        _run_battery, args=(tmp_path,), rounds=1, iterations=1
    )

    series = {
        "pf_hit_rate_cold": [results[t]["cold"][0] for t in TRACES],
        "pf_hit_rate_warm": [results[t]["warm"][0] for t in TRACES],
        "first_prefetch_cold": [results[t]["cold"][1] for t in TRACES],
        "first_prefetch_warm": [results[t]["warm"][1] for t in TRACES],
    }
    result = ExperimentResult(
        exp_id="warm_start",
        title="model persistence: warm-started vs cold sessions",
        paper_expectation=(
            "beyond the paper: a snapshot of a trained tree should advise "
            "from the first references, not after a warm-up"
        ),
        text=render_series(
            "trace", list(TRACES), series,
            title=(f"suffix of {refs // 2} refs, tree policy, "
                   f"{CACHE_BLOCKS}-block cache"),
        ),
        data={"refs": refs, "results": results},
    )
    record(result)

    for trace_name in TRACES:
        cold_rate, cold_first = results[trace_name]["cold"]
        warm_rate, warm_first = results[trace_name]["warm"]
        # the trained model starts advising no later than the cold one...
        assert warm_first <= cold_first
        # ...and never costs prefetch-cache hits on these workloads
        assert warm_rate >= cold_rate
    # on the highly predictable CAD trace the warm start must help
    # materially: advice within the first handful of references
    assert results["cad"]["warm"][1] <= 10
