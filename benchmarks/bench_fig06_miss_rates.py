"""Figure 6: miss rate vs cache size, four main schemes x four traces.

The paper's headline comparison.  Shape checks assert the qualitative
claims of Section 9.1:

* prefetching beats no-prefetch everywhere it should;
* cello/snake: both next-limit and the tree help; combined is best;
* CAD: next-limit is useless (no sequentiality) while the tree cuts
  misses by tens of percent;
* sitar: next-limit cuts misses by ~73%-scale amounts, the basic tree
  adds nearly nothing on top;
* tree + next-limit gains are roughly additive.
"""

from repro.analysis.experiments import run_fig6
from repro.analysis.metrics import miss_reduction


def test_fig06_miss_rates(benchmark, ctx, record, calibrated):
    result = benchmark.pedantic(lambda: run_fig6(ctx), rounds=1, iterations=1)
    record(result)
    data = result.data
    red = data["max_reduction_vs_no_prefetch_pct"]

    # cello / snake: sequential prefetching helps substantially...
    assert red["cello"]["next-limit"] > 20.0
    assert red["snake"]["next-limit"] > 20.0
    # ...and the combined scheme is at least as good as next-limit alone.
    assert red["cello"]["tree-next-limit"] >= red["cello"]["next-limit"] - 7.0
    assert red["snake"]["tree-next-limit"] >= red["snake"]["next-limit"] - 7.0

    # CAD: one-block lookahead is no better than no prefetching at all...
    assert abs(red["cad"]["next-limit"]) < 8.0
    # ...while tree-based prediction cuts misses substantially (paper: ~36%).
    assert red["cad"]["tree"] > 5.0
    if calibrated:
        assert red["cad"]["tree"] > 15.0

    # sitar: next-limit dominates (paper: up to 73%).
    assert red["sitar"]["next-limit"] > 50.0
    # The tree adds little on top of next-limit for sitar.
    assert red["sitar"]["tree-next-limit"] >= red["sitar"]["next-limit"] - 5.0

    # Additivity (Section 9.1): combined gain ~ tree gain + next-limit gain.
    for trace in ("cello", "snake"):
        base = data[trace]["no-prefetch"]
        for i in range(len(base)):
            tree_gain = base[i] - data[trace]["tree"][i]
            nl_gain = base[i] - data[trace]["next-limit"][i]
            combined = base[i] - data[trace]["tree-next-limit"][i]
            assert combined >= 0.5 * max(tree_gain, nl_gain)
