"""Figure 12: prefetch cache hit rate vs T_cpu (cache 1024).

Paper: the hit rate decreases substantially as T_cpu first grows (more
speculative prefetching) and levels out above ~50 ms; the CAD trace stays
high (~74%).
"""

from repro.analysis.experiments import run_fig12


def test_fig12_tcpu_hit_rate(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig12(ctx), rounds=1, iterations=1)
    record(result)
    for trace, series in result.data.items():
        assert all(0.0 <= v <= 100.0 for v in series), trace
        # Hit rate does not improve as T_cpu grows from 20ms to 640ms.
        assert series[-1] <= series[0] + 10.0, trace
