"""Shared fixtures for the reproduction benchmarks.

Configuration via environment:

* ``REPRO_BENCH_REFS``  - references per trace (default 30000).  The paper's
  traces are 0.15-3.9M references; 30k keeps the full battery fast while
  preserving every qualitative shape.  Raise it for tighter numbers.
* ``REPRO_BENCH_SEED``  - workload seed (default 1999).
* ``REPRO_BENCH_JOBS``  - worker processes for independent simulations
  (default 1 = serial).  Every figure harness declares its full spec grid
  up front, so with N jobs the battery's wall clock approaches 1/N of the
  serial run on an N-core box.
* ``REPRO_BENCH_CACHE`` - persistent result-cache directory.  Results are
  stored as checksummed snapshots keyed by spec content hash; a second
  bench run against a warm cache executes zero simulations.

All benches share one :class:`ExperimentContext` over a single spec-driven
scheduler (see docs/EXPERIMENTS.md), so simulations reused across figures
(e.g. the tree policy's cache-size sweep feeding Figures 7-10) run exactly
once per session — and in parallel within each figure's batch.

Each bench ``record()``s its rendered table/series: the text is written to
``benchmarks/results/<exp_id>.txt`` and echoed in the terminal summary, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
paper-shaped output.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.runner import ExperimentContext

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-style cache-size axis (blocks).
CACHE_SIZES = (128, 256, 512, 1024, 2048, 4096)

_recorded: List[ExperimentResult] = []


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    refs = int(os.environ.get("REPRO_BENCH_REFS", "30000"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1999"))
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None
    return ExperimentContext(
        num_references=refs, seed=seed, cache_sizes=CACHE_SIZES,
        jobs=jobs, cache_dir=cache_dir,
    )


@pytest.fixture(scope="session")
def calibrated(ctx) -> bool:
    """True when the run is large enough for magnitude assertions.

    Below ~20k references the LZ tree is still warming up and the
    paper-scale magnitudes (prediction accuracy, tree miss reductions,
    threshold sensitivity) are depressed; ordering/shape assertions still
    hold and remain enforced unconditionally.
    """
    return ctx.num_references >= 20_000


@pytest.fixture()
def record():
    def _record(result: ExperimentResult) -> ExperimentResult:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.exp_id}.txt"
        body = (
            f"== {result.exp_id}: {result.title} ==\n"
            f"paper: {result.paper_expectation}\n\n{result.text}\n"
        )
        path.write_text(body, encoding="utf-8")
        _recorded.append(result)
        return result

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _recorded:
        return
    terminalreporter.section("reproduced tables and figures")
    for result in _recorded:
        terminalreporter.write_line("")
        terminalreporter.write_line(
            f"== {result.exp_id}: {result.title} =="
        )
        terminalreporter.write_line(f"paper: {result.paper_expectation}")
        for line in result.text.splitlines():
            terminalreporter.write_line(line)
