"""Figure 10: average probability of the prefetched blocks (tree policy).

Paper: CAD's prefetched blocks carry a higher average probability than the
other traces', which explains its higher prefetch-cache hit rate (Fig 9).
"""

from repro.analysis.experiments import run_fig10


def test_fig10_avg_probability(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig10(ctx), rounds=1, iterations=1)
    record(result)
    data = result.data
    cad_mean = sum(data["cad"]) / len(data["cad"])
    cello_mean = sum(data["cello"]) / len(data["cello"])
    assert cad_mean > cello_mean
    # All probabilities exceed the depth-1 profitability floor (~0.037).
    assert all(v > 0.03 for s in data.values() for v in s if v > 0)
