"""Table 4: tree-threshold's sensitivity to its threshold parameter.

Paper: sweeping the threshold from 0.4 down to 0.001, no single value is
best for every trace, and the worst choice costs up to ~15% extra misses
relative to the best - the motivation for parameter-free cost-benefit.

Reproduction note: the sensitivity magnitude reproduces (up to ~10% here
vs the paper's 15%), but in our implementation the optimum is monotone -
the lowest threshold always wins - where the paper found per-trace optima
between 0.002 and 0.05.  The likely cause is a genuine implementation
difference: this repository's prefetch cache evicts by Eq. 11 cost with
overdue-probability decay for *every* policy, so an aggressive threshold's
junk prefetches are shed cheaply before they displace useful blocks; in
the paper's baselines a too-low threshold hurt.  The motivating conclusion
is unchanged: the parameter matters, and the untuned cost-benefit tree
matches the best-tuned configuration (Figure 17) without sweeping anything.
"""

from repro.analysis.experiments import run_table4


def test_table4_threshold_sensitivity(benchmark, ctx, record, calibrated):
    result = benchmark.pedantic(lambda: run_table4(ctx), rounds=1, iterations=1)
    record(result)
    data = result.data
    # The tuning matters: at least one trace pays a material penalty for a
    # bad threshold (paper: up to 15%; here up to ~10%).
    if calibrated:
        assert max(d["difference_pct"] for d in data.values()) > 4.0
    assert max(d["difference_pct"] for d in data.values()) >= 0.0
