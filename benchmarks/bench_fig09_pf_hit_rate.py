"""Figure 9: hit rate in the prefetch cache (tree policy).

Paper: CAD's prefetched blocks are referenced ~75% of the time; the other
traces are far lower (~10%) - the tree prefetches many blocks that are
never used or are displaced first.
"""

from repro.analysis.experiments import run_fig9


def test_fig09_prefetch_cache_hit_rate(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig9(ctx), rounds=1, iterations=1)
    record(result)
    data = result.data
    # CAD clearly leads the pack (paper: ~75% vs ~10%).
    cad_mean = sum(data["cad"]) / len(data["cad"])
    cello_mean = sum(data["cello"]) / len(data["cello"])
    assert cad_mean > cello_mean + 10.0
    assert all(0.0 <= v <= 100.0 for s in data.values() for v in s)
