"""Relaxing the infinite-disk assumption (Sections 3 / 6.3).

The paper assumes "an infinite number of available disks and no wait time
for disk accesses" and acknowledges ignoring "disks spending time fetching
blocks that are never accessed".  This bench quantifies what those
assumptions hide: the same workload and policy under 1/2/4/unlimited
drives, at an I/O-bound compute setting (small T_cpu) where congestion can
actually bite.

Expected shape: miss rates are unchanged (queueing delays completions, not
cache decisions), while stall and elapsed time grow as drives shrink -
and the prefetching policies pay more than no-prefetch does, because
speculative reads occupy drives that demand fetches then wait for.
"""

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table
from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator

T_CPU = 2.0  # I/O-bound regime; at the paper's 50 ms congestion is invisible
CACHE = 512
DISKS = (1, 2, 4, None)


def test_disk_congestion(benchmark, ctx, record):
    params = PAPER_PARAMS.with_t_cpu(T_CPU)
    trace = ctx.trace("snake").as_list()[:20_000]

    def sweep():
        rows = []
        for policy_name in ("no-prefetch", "next-limit", "tree-next-limit"):
            for disks in DISKS:
                sim = Simulator(
                    params, make_policy(policy_name), CACHE, num_disks=disks
                )
                st = sim.run(trace)
                rows.append([
                    policy_name,
                    disks if disks is not None else "inf",
                    round(st.miss_rate, 2),
                    round(st.stall_time / max(st.accesses, 1), 3),
                    round(st.mean_access_time, 3),
                    round(st.extra.get("disk_utilisation", 0.0), 3),
                ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="disk_congestion",
        title="Finite drives vs the paper's infinite-disk assumption",
        paper_expectation=(
            "the paper assumes no disk congestion; with few drives and an "
            "I/O-bound CPU, completions queue: miss rates hold but stall "
            "and access time grow, more for prefetch-heavy policies"
        ),
        text=render_table(
            ["policy", "disks", "miss_rate", "stall_ms/access",
             "ms/access", "utilisation"],
            rows,
            title=f"Disk congestion (T_cpu {T_CPU} ms, cache {CACHE})",
            decimals=3,
        ),
        data={"rows": rows},
    ))
    by_policy = {}
    for policy, disks, miss, stall, access_ms, util in rows:
        by_policy.setdefault(policy, {})[disks] = (miss, access_ms)
    for policy, entries in by_policy.items():
        # Miss rate is a cache property: invariant to drive count.
        misses = [v[0] for v in entries.values()]
        assert max(misses) - min(misses) < 1.0, policy
        # One drive is never faster than unlimited drives.
        assert entries[1][1] >= entries["inf"][1] - 1e-6, policy
