"""Advisory-service throughput: advice/sec and latency vs client count.

Replays a seeded CAD trace against a live in-process server at 1, 4, and
16 concurrent clients and records aggregate throughput plus client-side
p50/p95/p99 latency.  The serving loop is a single asyncio event loop
running microsecond-scale pure-Python session work, so aggregate
advice/sec should *not* collapse as concurrency grows — connection
multiplexing, not parallelism, is what is being measured — and every
client must finish with the same deterministic miss rate (concurrency
does not perturb sessions).

``REPRO_BENCH_SERVICE_REFS`` (default 3000) sets references per client;
16 clients x 3000 refs ~ 48k OBSERVE round trips, a few seconds.
"""

import os

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_series
from repro.service.replay import replay
from repro.service.server import BackgroundServer
from repro.traces.synthetic import make_trace

CLIENT_COUNTS = (1, 4, 16)


def _run_battery():
    refs = int(os.environ.get("REPRO_BENCH_SERVICE_REFS", "3000"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1999"))
    blocks = make_trace("cad", num_references=refs, seed=seed).as_list()
    reports = {}
    with BackgroundServer() as server:
        for clients in CLIENT_COUNTS:
            reports[clients] = replay(
                blocks, port=server.port, clients=clients,
                policy="tree", cache_size=1024,
            )
    return refs, reports


def test_service_throughput(benchmark, record):
    refs, reports = benchmark.pedantic(_run_battery, rounds=1, iterations=1)

    series = {
        "advice_per_sec": [
            round(reports[c].advice_per_second, 1) for c in CLIENT_COUNTS
        ],
        "p50_ms": [reports[c].latency["p50_ms"] for c in CLIENT_COUNTS],
        "p95_ms": [reports[c].latency["p95_ms"] for c in CLIENT_COUNTS],
        "p99_ms": [reports[c].latency["p99_ms"] for c in CLIENT_COUNTS],
    }
    result = ExperimentResult(
        exp_id="service_throughput",
        title="advisory service: replay throughput vs concurrency",
        paper_expectation=(
            "beyond the paper: the offline simulator served online; "
            "aggregate advice/sec sustained across 1/4/16 clients"
        ),
        text=render_series(
            "clients", list(CLIENT_COUNTS), series,
            title=f"replay of cad ({refs} refs/client, tree, 1024 blocks)",
        ),
        data={
            "refs_per_client": refs,
            "reports": {c: reports[c].as_dict() for c in CLIENT_COUNTS},
        },
    )
    record(result)

    for clients in CLIENT_COUNTS:
        report = reports[clients]
        assert report.requests == clients * refs
        assert report.advice_per_second > 0
        latency = report.latency
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        # determinism under concurrency: every client saw the same stream,
        # so every session must end at the same miss rate
        assert len(set(report.per_client_miss_rate)) == 1

    # one event loop serving 16 connections should still clear a healthy
    # aggregate rate (loose floor: hundreds/sec even on slow CI boxes)
    assert reports[16].advice_per_second > 200
