"""Advisory-service throughput: advice/sec and latency vs client count.

Replays a seeded CAD trace against a live in-process server at 1, 4, and
16 concurrent clients and records aggregate throughput plus client-side
p50/p95/p99 latency.  The serving loop is a single asyncio event loop
running microsecond-scale pure-Python session work, so aggregate
advice/sec should *not* collapse as concurrency grows — connection
multiplexing, not parallelism, is what is being measured — and every
client must finish with the same deterministic miss rate (concurrency
does not perturb sessions).

``REPRO_BENCH_SERVICE_REFS`` (default 3000) sets references per client;
16 clients x 3000 refs ~ 48k OBSERVE round trips, a few seconds.

A second battery measures the distributed-tracing tax: the same replay
at 4 clients against a plain server and against a server tracing every
session to NDJSON (client spans on too) — the committed overhead number
is the per-request p50 tax of running with ``--trace-dir`` at sample
rate 1.0.  Per-request latency is the honest metric here: this bench
runs client, server, and both tracers' writer threads in one
interpreter, so the aggregate advice/sec delta double-counts GIL
contention that a real deployment (worker processes on their own
cores) never pays; the table carries both columns.
"""

import os
import tempfile

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_series
from repro.obs.trace import Tracer
from repro.service.replay import replay
from repro.service.server import BackgroundServer, PrefetchService
from repro.traces.synthetic import make_trace

CLIENT_COUNTS = (1, 4, 16)
TRACE_CLIENTS = 4


def _run_battery():
    refs = int(os.environ.get("REPRO_BENCH_SERVICE_REFS", "3000"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1999"))
    blocks = make_trace("cad", num_references=refs, seed=seed).as_list()
    reports = {}
    with BackgroundServer() as server:
        for clients in CLIENT_COUNTS:
            reports[clients] = replay(
                blocks, port=server.port, clients=clients,
                policy="tree", cache_size=1024,
            )
    trace_reports = _run_trace_overhead(blocks)
    return refs, reports, trace_reports


def _run_trace_overhead(blocks, rounds=9):
    """The same replay, tracing off vs tracing every session (sample=1).

    Runs the off/on pair back to back ``rounds`` times and keeps the
    pair with the *median* on/off p50 ratio.  A single A/B on a shared
    box measures the scheduler more than the tracer (round-to-round
    drift is ±10%, bigger than the tax itself); pairing keeps both
    halves seconds apart under the same machine climate so the ratio
    isolates the tracer, and the median over rounds discards the pairs
    where one half hit a noise burst — the min would crown whichever
    round had an unlucky *untraced* half and report a negative tax.
    """
    pairs = []  # (ratio, off_report, on_report)

    for _ in range(rounds):
        with BackgroundServer() as server:
            off = replay(
                blocks, port=server.port, clients=TRACE_CLIENTS,
                policy="tree", cache_size=1024,
            )
        with tempfile.TemporaryDirectory() as trace_dir:
            service = PrefetchService(
                tracer=Tracer(
                    "worker", trace_dir=trace_dir, sample=1.0, seed=0
                )
            )
            client_tracer = Tracer(
                "client", trace_dir=trace_dir, sample=1.0, seed=0
            )
            try:
                with BackgroundServer(service=service) as server:
                    on = replay(
                        blocks, port=server.port, clients=TRACE_CLIENTS,
                        policy="tree", cache_size=1024,
                        tracer=client_tracer,
                    )
            finally:
                client_tracer.close()
        ratio = on.latency["p50_ms"] / off.latency["p50_ms"]
        pairs.append((ratio, off, on))
    pairs.sort(key=lambda pair: pair[0])
    median = pairs[(len(pairs) - 1) // 2]
    return {"off": median[1], "on": median[2]}


def test_service_throughput(benchmark, record):
    refs, reports, trace_reports = benchmark.pedantic(
        _run_battery, rounds=1, iterations=1
    )

    series = {
        "advice_per_sec": [
            round(reports[c].advice_per_second, 1) for c in CLIENT_COUNTS
        ],
        "p50_ms": [reports[c].latency["p50_ms"] for c in CLIENT_COUNTS],
        "p95_ms": [reports[c].latency["p95_ms"] for c in CLIENT_COUNTS],
        "p99_ms": [reports[c].latency["p99_ms"] for c in CLIENT_COUNTS],
    }
    rate_off = trace_reports["off"].advice_per_second
    rate_on = trace_reports["on"].advice_per_second
    p50_off = trace_reports["off"].latency["p50_ms"]
    p50_on = trace_reports["on"].latency["p50_ms"]
    overhead_pct = round(100.0 * (p50_on - p50_off) / p50_off, 1)
    trace_series = {
        "advice_per_sec": [round(rate_off, 1), round(rate_on, 1)],
        "p50_ms": [p50_off, p50_on],
        "p99_ms": [
            trace_reports["off"].latency["p99_ms"],
            trace_reports["on"].latency["p99_ms"],
        ],
    }
    result = ExperimentResult(
        exp_id="service_throughput",
        title="advisory service: replay throughput vs concurrency",
        paper_expectation=(
            "beyond the paper: the offline simulator served online; "
            "aggregate advice/sec sustained across 1/4/16 clients"
        ),
        text=(
            render_series(
                "clients", list(CLIENT_COUNTS), series,
                title=f"replay of cad ({refs} refs/client, tree, "
                      "1024 blocks)",
            )
            + "\n"
            + render_series(
                "tracing", ["off", "on"], trace_series,
                title=f"tracing tax at {TRACE_CLIENTS} clients "
                      f"(sample=1.0, all spans to NDJSON): "
                      f"{overhead_pct:+.1f}% per-request p50",
            )
        ),
        data={
            "refs_per_client": refs,
            "reports": {c: reports[c].as_dict() for c in CLIENT_COUNTS},
            "tracing": {
                "clients": TRACE_CLIENTS,
                "off": trace_reports["off"].as_dict(),
                "on": trace_reports["on"].as_dict(),
                "overhead_pct": overhead_pct,
            },
        },
    )
    record(result)

    for clients in CLIENT_COUNTS:
        report = reports[clients]
        assert report.requests == clients * refs
        assert report.advice_per_second > 0
        latency = report.latency
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        # determinism under concurrency: every client saw the same stream,
        # so every session must end at the same miss rate
        assert len(set(report.per_client_miss_rate)) == 1

    # one event loop serving 16 connections should still clear a healthy
    # aggregate rate (loose floor: hundreds/sec even on slow CI boxes)
    assert reports[16].advice_per_second > 200

    # tracing must not perturb decisions, and its tax stays small.  The
    # committed results file carries the measured number (budget: <= 5%
    # per-request p50); the regression gate is looser because CI boxes
    # are noisy shared machines even under best-of-N.
    assert (trace_reports["on"].per_client_miss_rate
            == trace_reports["off"].per_client_miss_rate)
    assert p50_on <= 1.25 * p50_off
    assert trace_reports["on"].advice_per_second > 0.5 * rate_off
