"""File-level vs block-level prefetching (related work [6, 9]).

The paper's related work distinguishes its block-level scheme from systems
that prefetch whole files.  This bench puts the simplest file-level scheme
(fetch the rest of the file on a head miss; see
``repro.policies.file_prefetch``) against the block-level policies on the
file-backed workloads.

Expected shape: on whole-file-read traffic (sitar) file-level prefetching
rivals one-block lookahead at lower prefetch traffic per converted miss
(one trigger fetches the body; lookahead needs an event per block); on the
mixed disk workloads (cello, snake) it trails the combined scheme because
chains, point reads and partial reads are invisible to it; and it can do
nothing at all for CAD (no file structure).
"""

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table

POLICIES = ("no-prefetch", "next-limit", "file-prefetch", "tree-next-limit")
CACHES = (256, 1024)


def test_file_level_prefetching(benchmark, ctx, record):
    def sweep():
        rows = []
        for trace in ("sitar", "snake", "cello"):
            for cache in CACHES:
                for policy in POLICIES:
                    st = ctx.run(trace, policy, cache)
                    rows.append([
                        trace, cache, policy,
                        round(st.miss_rate, 2),
                        round(st.prefetch_cache_hit_rate, 1),
                        round(st.traffic_increase, 1),
                    ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="file_level",
        title="Whole-file prefetching vs block-level schemes",
        paper_expectation=(
            "related-work contrast: file-level prefetching suits whole-file "
            "read workloads but cannot see non-file traffic; the paper's "
            "block-level cost-benefit scheme composes with lookahead "
            "instead"
        ),
        text=render_table(
            ["trace", "cache", "policy", "miss_rate", "pf_hit_%",
             "extra_traffic_%"],
            rows,
            title="File-level vs block-level prefetching",
        ),
        data={"rows": rows},
    ))
    by = {(r[0], r[1], r[2]): r[3] for r in rows}
    for cache in CACHES:
        # sitar: file-prefetch is a large win over no-prefetch...
        assert by[("sitar", cache, "file-prefetch")] < (
            by[("sitar", cache, "no-prefetch")] * 0.6
        )
        # ...though the combined block-level scheme remains competitive.
        assert by[("sitar", cache, "tree-next-limit")] <= (
            by[("sitar", cache, "file-prefetch")] + 5.0
        )
