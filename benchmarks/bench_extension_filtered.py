"""Extension study: the misprediction filter (Section 9.2.2 / 9.6 direction).

The paper's future-work notes ask for "strategies to reduce the number of
blocks prefetched by eliminating mispredicted blocks" and for "bridging the
gap between the tree and the perfect-selector prefetching schemes".  This
bench measures our *tree-filtered* policy (per-block reliability feedback
gating prefetches) against tree and the oracle:

* prefetch precision (prefetch-cache hit rate) should improve,
* wasted traffic should drop,
* the miss rate should not regress,

quantifying how much of the tree-to-oracle gap simple selection feedback
recovers.
"""

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table

CACHES = (256, 1024)


def test_extension_misprediction_filter(benchmark, ctx, record):
    def sweep():
        rows = []
        for trace in ("cello", "snake", "cad", "sitar"):
            for cache in CACHES:
                tree = ctx.run(trace, "tree", cache)
                filt = ctx.run(trace, "tree-filtered", cache)
                oracle = ctx.run(trace, "perfect-selector", cache)
                rows.append([
                    trace, cache,
                    round(tree.miss_rate, 2),
                    round(filt.miss_rate, 2),
                    round(oracle.miss_rate, 2),
                    round(tree.prefetch_cache_hit_rate, 1),
                    round(filt.prefetch_cache_hit_rate, 1),
                    round(tree.traffic_increase, 1),
                    round(filt.traffic_increase, 1),
                ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="extension_filtered",
        title="Misprediction filter vs tree vs oracle",
        paper_expectation=(
            "future work in the paper: eliminate mispredicted blocks to "
            "close part of the tree-to-perfect-selector gap; the filter "
            "should raise prefetch precision and cut wasted traffic "
            "without regressing the miss rate"
        ),
        text=render_table(
            ["trace", "cache", "tree_miss", "filt_miss", "oracle_miss",
             "tree_pfhit", "filt_pfhit", "tree_traffic", "filt_traffic"],
            rows,
            title="Extension: per-block misprediction filtering",
        ),
        data={"rows": rows},
    ))
    for row in rows:
        (trace, cache, tree_miss, filt_miss, oracle_miss,
         tree_pfhit, filt_pfhit, tree_traffic, filt_traffic) = row
        # No miss-rate regression beyond noise.
        assert filt_miss <= tree_miss + 2.5, (trace, cache)
        # Precision does not fall.
        assert filt_pfhit >= tree_pfhit - 3.0, (trace, cache)
        # The oracle stays the lower bound.
        assert oracle_miss <= min(tree_miss, filt_miss) + 1.0, (trace, cache)
