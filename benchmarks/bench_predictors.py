"""Predictor study: the LZ tree vs Section 10's alternative models.

The paper's related work (Section 10) situates the LZ prefetch tree among
other history-based predictors: multi-order context models (Kroeger & Long),
probability graphs (Griffioen & Appleton), Markov/last-successor schemes.
This bench runs each predictor under the *identical* cost-benefit policy,
cache, and workload, so differences measure prediction quality alone.

Expected shape (consistent with that literature): conditioning on the
current block (Markov/PPM/graph) predicts Markovian object streams better
than the LZ parse, whose contexts fragment (every new substring restarts at
the root); the LZ tree's strength is longer exact sequences.
"""

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table

POLICIES = ("cb-lz", "cb-ppm", "cb-prob-graph", "cb-markov",
            "cb-last-successor")
CACHE = 1024


def test_predictor_comparison(benchmark, ctx, record):
    def sweep():
        rows = []
        for trace in ("cello", "snake", "cad", "sitar"):
            base = ctx.run(trace, "no-prefetch", CACHE).miss_rate
            for policy in POLICIES:
                st = ctx.run(trace, policy, CACHE)
                rows.append([
                    trace,
                    policy.removeprefix("cb-"),
                    round(st.miss_rate, 2),
                    round(100.0 * (base - st.miss_rate) / base, 1),
                    round(st.prediction_accuracy, 1),
                    round(st.prefetch_cache_hit_rate, 1),
                    st.extra["predictor_memory_items"],
                ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="predictor_study",
        title="Prediction models under the same cost-benefit policy",
        paper_expectation=(
            "Section 10 alternatives; the literature's expectation is that "
            "current-block-conditioned models (Markov/PPM/graph) predict "
            "Markovian streams better than the slowly-learning LZ parse, "
            "at comparable or smaller model sizes"
        ),
        text=render_table(
            ["trace", "predictor", "miss_rate", "reduction_%",
             "predictable_%", "pf_hit_%", "model_items"],
            rows,
            title=f"Predictor comparison (cache {CACHE})",
        ),
        data={"rows": rows},
    ))
    by_trace = {}
    for trace, predictor, miss, *_ in rows:
        by_trace.setdefault(trace, {})[predictor] = miss
    for trace, misses in by_trace.items():
        # Every predictor-driven policy is at worst ~neutral vs no-prefetch.
        base = ctx.run(trace, "no-prefetch", CACHE).miss_rate
        for predictor, miss in misses.items():
            assert miss <= base + 2.0, (trace, predictor)
    # The headline: on the CAD object stream, first-order conditioning
    # beats the LZ parse.
    assert by_trace["cad"]["markov"] < by_trace["cad"]["lz"]
