"""Figure 16 + Section 9.6: last-visited children are already cached,
so tree-lvc cannot beat tree.

Paper: >85% of last visited children are already cached at most cache
sizes, and simulating tree-lvc shows "no noticeable difference" to tree.
"""

from repro.analysis.experiments import run_fig16, run_tree_lvc_comparison


def test_fig16_lvc_cached(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig16(ctx), rounds=1, iterations=1)
    record(result)
    for trace in ("cad", "sitar"):
        series = result.data[trace]
        assert series[-1] > 60.0, trace


def test_sec96_tree_lvc_no_gain(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: run_tree_lvc_comparison(ctx), rounds=1, iterations=1
    )
    record(result)
    for trace, series in result.data.items():
        for tree_miss, lvc_miss in zip(series["tree"], series["tree-lvc"]):
            # "no noticeable difference" - within a few miss-rate points.
            assert abs(tree_miss - lvc_miss) < 5.0, trace
