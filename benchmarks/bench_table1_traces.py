"""Table 1: the trace inventory (synthetic stand-ins).

Regenerates the workload table: reference counts, unique blocks, L1 sizes,
and measured sequentiality, for the four synthetic workloads standing in
for cello / snake / CAD / sitar.
"""

from repro.analysis.experiments import run_table1


def test_table1_traces(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_table1(ctx), rounds=1, iterations=1)
    record(result)
    rows = {row[0]: row for row in result.data["rows"]}
    assert set(rows) == {"cello", "snake", "cad", "sitar"}
    # Table 1 shape: cello/snake are disk-level (L1-filtered) traces.
    assert rows["cello"][3] == 3840
    assert rows["snake"][3] == 640
    assert rows["cad"][3] is None
    # CAD has no sequential structure; sitar is the most sequential.
    assert rows["cad"][4] < 0.05
    assert rows["sitar"][4] > 0.5
