"""Ablations of the under-specified design choices (DESIGN.md Section 5).

The paper leaves several implementation choices open; these benches measure
how much each one matters, so the defaults are justified by data:

* **re-prefetch distance ``x`` (Eq. 11)** - our horizon-derived ``x`` vs a
  fixed ``x = 1``;
* **candidate frontier width** - how many tree candidates the cost-benefit
  loop may consider per access period;
* **EWMA constant for ``s``** - smoothing of the prefetches-per-period
  estimate that feeds Eqs. 3/6;
* **marginal hit-rate band** - how many stack positions are averaged for
  the Eq. 13 demand-eviction cost.
"""

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table
from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator

TRACES = ("snake", "cad")
CACHE = 1024


def _run(ctx, trace, *, policy_kwargs=None, **sim_kwargs):
    sim = Simulator(
        PAPER_PARAMS,
        make_policy("tree", **(policy_kwargs or {})),
        CACHE,
        **sim_kwargs,
    )
    return sim.run(ctx.trace(trace).as_list())


def test_ablation_refetch_distance(benchmark, ctx, record):
    """Eq. 11's ``x``: horizon-derived vs pinned values."""

    def sweep():
        rows = []
        for trace in TRACES:
            for label, kwargs in (
                ("horizon", {}),
                ("x=0", {"refetch_distance": 0}),
                ("x=1", {"refetch_distance": 1}),
                ("x=4", {"refetch_distance": 4}),
            ):
                st = _run(ctx, trace, **kwargs)
                rows.append(
                    [trace, label, round(st.miss_rate, 3),
                     round(st.prefetch_cache_hit_rate, 2),
                     round(st.prefetches_per_period, 3)]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="ablation_refetch_distance",
        title="Eq. 11 re-prefetch distance x",
        paper_expectation=(
            "the paper leaves x open; with the paper's constants the "
            "horizon is 1, so choices should differ little - this bench "
            "certifies that"
        ),
        text=render_table(
            ["trace", "x", "miss_rate", "pf_hit_rate", "s"], rows,
            title=f"Ablation: Eq. 11 refetch distance (cache {CACHE})",
            decimals=3,
        ),
        data={"rows": rows},
    ))
    by_trace = {}
    for trace, label, miss, *_ in rows:
        by_trace.setdefault(trace, []).append(miss)
    for trace, misses in by_trace.items():
        assert max(misses) - min(misses) < 5.0, trace


def test_ablation_candidate_frontier(benchmark, ctx, record):
    """Frontier width: how many candidates per period matter."""

    def sweep():
        rows = []
        for trace in TRACES:
            for width in (1, 4, 16, 64):
                st = _run(ctx, trace,
                          policy_kwargs={"max_candidates": width})
                rows.append(
                    [trace, width, round(st.miss_rate, 3),
                     round(st.prefetches_per_period, 3)]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="ablation_candidate_frontier",
        title="Candidate frontier width",
        paper_expectation=(
            "diminishing returns: a handful of candidates per period "
            "captures nearly all of the benefit (probabilities below the "
            "~0.037 profitability floor never prefetch)"
        ),
        text=render_table(
            ["trace", "max_candidates", "miss_rate", "s"], rows,
            title=f"Ablation: candidate frontier width (cache {CACHE})",
            decimals=3,
        ),
        data={"rows": rows},
    ))
    # Widening beyond 16 changes little.
    for trace in TRACES:
        misses = [r[2] for r in rows if r[0] == trace]
        assert abs(misses[-1] - misses[-2]) < 2.0


def test_ablation_s_smoothing(benchmark, ctx, record):
    """EWMA constant for the prefetches-per-period estimate ``s``."""

    def sweep():
        rows = []
        for trace in TRACES:
            for alpha in (0.01, 0.05, 0.3, 1.0):
                st = _run(ctx, trace, s_alpha=alpha)
                rows.append(
                    [trace, alpha, round(st.miss_rate, 3),
                     round(st.prefetches_per_period, 3)]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="ablation_s_smoothing",
        title="EWMA constant for s",
        paper_expectation=(
            "with the paper's constants the model is insensitive to s "
            "smoothing (the horizon stays 1 across plausible s)"
        ),
        text=render_table(
            ["trace", "alpha", "miss_rate", "s"], rows,
            title=f"Ablation: s EWMA constant (cache {CACHE})",
            decimals=3,
        ),
        data={"rows": rows},
    ))
    for trace in TRACES:
        misses = [r[2] for r in rows if r[0] == trace]
        assert max(misses) - min(misses) < 5.0


def test_ablation_marginal_band(benchmark, ctx, record):
    """Stack-position band averaged for Eq. 13's marginal hit rate."""

    def sweep():
        rows = []
        for trace in TRACES:
            for band in (1, 8, 64):
                st = _run(ctx, trace, marginal_band=band)
                rows.append([trace, band, round(st.miss_rate, 3),
                             round(st.prefetches_per_period, 3)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="ablation_marginal_band",
        title="Eq. 13 marginal hit-rate estimator band",
        paper_expectation=(
            "a single stack position is noisy; a small band stabilises the "
            "demand-eviction cost without changing the outcome much"
        ),
        text=render_table(
            ["trace", "band", "miss_rate", "s"], rows,
            title=f"Ablation: marginal-rate band width (cache {CACHE})",
            decimals=3,
        ),
        data={"rows": rows},
    ))
    for trace in TRACES:
        misses = [r[2] for r in rows if r[0] == trace]
        assert max(misses) - min(misses) < 6.0
