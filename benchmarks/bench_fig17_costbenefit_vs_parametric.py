"""Figure 17: cost-benefit tree vs best-tuned parametric schemes.

Paper: the untuned tree tracks the *best* tree-threshold and
tree-children configurations - the cost-benefit analysis dynamically
performs the optimal amount of prefetching without a parameter.
"""

from repro.analysis.experiments import run_fig17


def test_fig17_tree_matches_best_parametric(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig17(ctx), rounds=1, iterations=1)
    record(result)
    for trace, series in result.data.items():
        for tree, thr, chd in zip(
            series["tree"],
            series["best tree-threshold"],
            series["best tree-children"],
        ):
            best_param = min(thr, chd)
            # tree is close to the best tuned parametric scheme: within a
            # few miss-rate points, despite having no parameter at all.
            assert tree <= best_param + 8.0, trace
