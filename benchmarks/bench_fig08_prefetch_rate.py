"""Figure 8: blocks prefetched per access period (tree policy).

Paper: prefetching is most aggressive at small caches (snake ~2/period, a
180% traffic increase) and falls to less than a block every three access
periods at large caches.
"""

from repro.analysis.experiments import run_fig8


def test_fig08_prefetch_rate(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig8(ctx), rounds=1, iterations=1)
    record(result)
    for trace, series in result.data.items():
        # More prefetching at small caches than at large ones.
        assert series[0] >= series[-1] - 0.05, trace
        # Large caches: less than one block every ~2 periods.
        assert series[-1] < 0.5, trace
