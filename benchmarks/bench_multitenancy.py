"""Multi-tenant density: 10k concurrent sessions on one worker.

The tenancy pitch is density: a worker serving thousands of sessions
holds ONE copy of each tenant's base model and charges every session
only its private delta, with a memory budget evicting idle sessions to
checkpoints.  This bench drives a single in-process
:class:`PrefetchService` (no sockets — the wire costs are
``bench_service_throughput``'s story) through three phases:

* **density** — open ``REPRO_BENCH_TENANCY_SESSIONS`` (default 10000)
  sessions across 4 tenants under a budget sized for roughly half their
  deltas, stream every session, and check the accounted model bytes
  stay inside budget + the amortised sweep slack while evictions and
  resurrections actually happen.
* **cold-open latency** — shared-base opens must not be slower than the
  private-copy path they replace (each private OPEN restores a full
  model copy; an overlay open just wraps the shared base).
* **parity** — sessions served under eviction pressure (including
  evict→resurrect round trips) must emit advice bit-identical to
  private-model sessions warm-started from the same snapshot.

``REPRO_BENCH_TENANCY_REFS`` (default 12) sets references per density
session.
"""

import os
import time

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_series
from repro.core.tree import PAPER_NODE_BYTES
from repro.service import server as server_mod
from repro.service.metrics import percentiles_from_samples
from repro.service.protocol import (
    CloseRequest,
    ErrorReply,
    ObserveRequest,
    OpenRequest,
    StatsRequest,
)
from repro.service.server import PrefetchService, ServiceLimits

#: One in-process "connection" holds every session; lift the wire-era
#: per-connection and per-server caps out of the way.
LIMITS = ServiceLimits(max_sessions=100_000,
                       max_sessions_per_connection=100_000)
from repro.store import ModelStore
from repro.store.models import model_snapshot
from repro.tenancy.config import parse_tenancy_config
from repro.tenancy.manager import TenancyManager
from repro.tenancy.memory import rss_bytes
from repro.traces.synthetic import make_trace

TENANTS = ("t0", "t1", "t2", "t3")


def _lcg_blocks(n, seed, universe=64):
    x = seed or 1
    out = []
    for _ in range(n):
        x = (x * 1103515245 + 12345) % (2 ** 31)
        out.append(x % universe)
    return out


def _store_with_base(tmp_path, seed):
    from repro.core.tree import PrefetchTree

    base = PrefetchTree()
    base.record_all(
        make_trace("cello", num_references=20_000, seed=seed).as_list()
    )
    store = ModelStore(str(tmp_path / "store"))
    store.save("base", model_snapshot(base, base=True))
    return store, base.memory_items() * PAPER_NODE_BYTES


def _tenant_service(store, ckpt_dir, budget):
    config = parse_tenancy_config({
        "tenants": {name: {"model": "base"} for name in TENANTS},
    })
    return PrefetchService(
        store=store,
        tenancy=TenancyManager(store, config),
        memory_budget_bytes=budget,
        checkpoint_dir=str(ckpt_dir),
        limits=LIMITS,
    )


def _observe(service, owned, sid, block, seq, request_id=0):
    reply = service.handle(
        ObserveRequest(id=request_id, session=sid, block=block, seq=seq),
        owned,
    )
    assert not isinstance(reply, ErrorReply), reply
    return reply.advice


def _density_phase(store, tmp_path, base_bytes, sessions, refs):
    per_session = refs * PAPER_NODE_BYTES  # worst case: 1 node per access
    # Each tenant loads its own shared base (bases are keyed per tenant,
    # not per registry entry); the budget must clear all of them, then
    # leave delta headroom for roughly half the sessions.
    budget = base_bytes * len(TENANTS) + (sessions // 2) * per_session
    service = _tenant_service(store, tmp_path / "density-ckpt", budget)
    owned = set()
    open_samples = []
    sids = []
    for index in range(sessions):
        started = time.perf_counter()
        reply = service.handle(
            OpenRequest(id=index, tenant=TENANTS[index % len(TENANTS)],
                        cache_size=64),
            owned,
        )
        open_samples.append(time.perf_counter() - started)
        assert not isinstance(reply, ErrorReply), reply
        sids.append(reply.session)
    for index, sid in enumerate(sids):
        for seq, block in enumerate(_lcg_blocks(refs, seed=index + 1)):
            _observe(service, owned, sid, block, seq)

    metrics = service.metrics
    accounted = service.accounted_model_bytes()
    # Between amortised sweeps each observe can add at most one node, so
    # the instantaneous total may overshoot by exactly that slack.
    slack = server_mod._BUDGET_CHECK_INTERVAL * PAPER_NODE_BYTES
    assert accounted <= budget + slack, (
        f"accounted {accounted} exceeds budget {budget} + slack {slack}"
    )
    assert metrics.sessions_evicted > 0, "budget never forced an eviction"
    # Every session is still logically open; the evicted ones just live
    # on disk instead of in the table.
    assert metrics.live_sessions == sessions
    assert len(service.sessions) + len(service.evicted) == sessions
    # Spot-check a sample spread across the id space: every session —
    # live or evicted — must still answer with its full history.
    step = max(1, sessions // 100)
    for sid in sids[::step]:
        stats = service.handle(StatsRequest(id=1, session=sid), owned).stats
        assert stats["period"] == refs, (sid, stats["period"])
    return service, {
        "budget_mb": budget / (1 << 20),
        "accounted_mb": accounted / (1 << 20),
        "base_mb": base_bytes / (1 << 20),
        "rss_mb": rss_bytes() / (1 << 20),
        "sessions": sessions,
        "evicted": metrics.sessions_evicted,
        "resurrected": metrics.sessions_resurrected,
        "open_latency": percentiles_from_samples(open_samples),
    }


def _cold_open_phase(store, tmp_path, opens=300):
    """Shared-base OPEN latency vs the private-copy OPEN it replaces."""
    def timed_opens(service, request):
        owned = set()
        samples = []
        for index in range(opens):
            started = time.perf_counter()
            reply = service.handle(request(index), owned)
            samples.append(time.perf_counter() - started)
            assert not isinstance(reply, ErrorReply), reply
        return percentiles_from_samples(samples)

    private = timed_opens(
        PrefetchService(store=store, default_model="base", limits=LIMITS),
        lambda i: OpenRequest(id=i, cache_size=64),
    )
    shared = timed_opens(
        _tenant_service(store, tmp_path / "open-ckpt", budget=None),
        lambda i: OpenRequest(id=i, tenant=TENANTS[i % len(TENANTS)],
                              cache_size=64),
    )
    return {"private": private, "shared": shared}


def _parity_phase(store, tmp_path, base_bytes, streams=6, refs=240):
    """Advice under eviction pressure == private warm-started advice."""
    interval = server_mod._BUDGET_CHECK_INTERVAL
    server_mod._BUDGET_CHECK_INTERVAL = 1
    try:
        budget = base_bytes * len(TENANTS) + 12 * PAPER_NODE_BYTES
        pressured = _tenant_service(
            store, tmp_path / "parity-ckpt", budget
        )
        baseline = PrefetchService(store=store, default_model="base",
                                   limits=LIMITS)
        traces = [
            _lcg_blocks(refs, seed=900 + index) for index in range(streams)
        ]

        def run(service, request):
            owned = set()
            sids = [
                service.handle(request(index), owned).session
                for index in range(streams)
            ]
            advice = [[] for _ in range(streams)]
            for seq in range(refs):  # interleave: worst case for LRU
                for index, sid in enumerate(sids):
                    advice[index].append(_observe(
                        service, owned, sid, traces[index][seq], seq
                    ).as_dict())
            finals = [
                service.handle(CloseRequest(id=1, session=sid), owned).stats
                for sid in sids
            ]
            return advice, finals

        want = run(
            baseline, lambda i: OpenRequest(id=i, cache_size=64)
        )
        got = run(
            pressured,
            lambda i: OpenRequest(id=i, tenant=TENANTS[i % len(TENANTS)],
                                  cache_size=64),
        )
        assert pressured.metrics.sessions_evicted > 0
        assert got == want, "shared/evicted serving diverged from private"
        return {
            "streams": streams,
            "refs": refs,
            "evict_resume_cycles": pressured.metrics.sessions_resurrected,
        }
    finally:
        server_mod._BUDGET_CHECK_INTERVAL = interval


def test_multitenancy(benchmark, record, tmp_path):
    sessions = int(os.environ.get("REPRO_BENCH_TENANCY_SESSIONS", "10000"))
    refs = int(os.environ.get("REPRO_BENCH_TENANCY_REFS", "12"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1999"))

    def battery():
        store, base_bytes = _store_with_base(tmp_path, seed)
        density = _density_phase(
            store, tmp_path, base_bytes, sessions, refs
        )[1]
        opens = _cold_open_phase(store, tmp_path)
        parity = _parity_phase(store, tmp_path, base_bytes)
        return density, opens, parity

    density, opens, parity = benchmark.pedantic(
        battery, rounds=1, iterations=1
    )

    axis = ["sessions", "evicted", "resurrected", "budget_mb",
            "accounted_mb", "rss_mb"]
    series = {
        "value": [
            density["sessions"], density["evicted"],
            density["resurrected"], round(density["budget_mb"], 2),
            round(density["accounted_mb"], 2), round(density["rss_mb"], 1),
        ],
    }
    open_line = (
        f"cold-open p99 ms: shared={opens['shared']['p99_ms']} "
        f"private={opens['private']['p99_ms']} "
        f"(p50 {opens['shared']['p50_ms']} vs {opens['private']['p50_ms']})"
    )
    result = ExperimentResult(
        exp_id="multitenancy",
        title="multi-tenant density: shared bases, budget, eviction",
        paper_expectation=(
            "beyond the paper: one worker holds 10k+ tenant sessions at "
            "bounded model memory; eviction/resume is decision-invisible"
        ),
        text=render_series(
            "metric", axis, series,
            title=(
                f"{density['sessions']} sessions x {refs} refs across "
                f"{len(TENANTS)} tenants, one in-process worker"
            ),
        ) + f"\n{open_line}\nparity: {parity['streams']} streams x "
            f"{parity['refs']} refs bit-identical under "
            f"{parity['evict_resume_cycles']} evict/resume cycles",
        data={"density": density, "cold_open": opens, "parity": parity},
    )
    record(result)

    # Shared opens skip the per-session model copy; they must not regress
    # past the private path they replace (loose: CI boxes are noisy).
    assert (opens["shared"]["p99_ms"]
            <= max(opens["private"]["p99_ms"] * 1.5, 1.0))
