"""Figure 15: no-prefetch vs tree vs the perfect-selector oracle.

Paper: perfect-selector reduces miss rates considerably below tree for
all traces - there is substantial headroom in candidate *selection* even
with the same prediction structure.
"""

from repro.analysis.experiments import run_fig15


def test_fig15_perfect_selector(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig15(ctx), rounds=1, iterations=1)
    record(result)
    for trace, series in result.data.items():
        for oracle, tree, base in zip(
            series["perfect-selector"], series["tree"], series["no-prefetch"]
        ):
            assert oracle <= tree + 2.0, trace
            assert oracle <= base + 1e-9, trace
    # For the predictable traces the oracle's win over tree is material.
    for trace in ("cad", "sitar"):
        gaps = [
            t - o
            for t, o in zip(
                result.data[trace]["tree"], result.data[trace]["perfect-selector"]
            )
        ]
        assert max(gaps) > 2.0, trace
