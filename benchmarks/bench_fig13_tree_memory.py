"""Figure 13: limiting the prefetch tree's memory (CAD trace).

Paper: with the tree capped by an LRU list of substrings, ~32K nodes
(~1.25 MB at 40 bytes/node) already matches the unbounded tree across
cache sizes; much smaller budgets hurt.
"""

from repro.analysis.experiments import run_fig13


def test_fig13_tree_memory(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: run_fig13(ctx, cache_sizes=(256, 1024)), rounds=1, iterations=1
    )
    record(result)
    budgets = result.data["budgets"]
    assert budgets[-1] == "unbounded"
    for label, ratios in result.data["series"].items():
        # Ratios are tree/no-prefetch: prefetching never hurts badly.
        assert all(r <= 1.1 for r in ratios), label
        # 32K nodes is within a whisker of unbounded (paper's headline).
        idx_32k = budgets.index("32768")
        assert ratios[idx_32k] <= ratios[-1] + 0.03, label
