"""Figure 14: percentage of predictable blocks NOT already cached.

Paper: low (~15%) for snake, CAD and sitar - the tree identifies the
right candidates, but most already reside in the cache, bounding how much
the basic tree scheme can improve.
"""

from repro.analysis.experiments import run_fig14


def test_fig14_predictable_uncached(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: run_fig14(ctx), rounds=1, iterations=1)
    record(result)
    for trace in ("snake", "cad", "sitar"):
        series = result.data[trace]
        # Shrinks as the cache grows; small at the largest cache.
        assert series[-1] <= series[0] + 5.0
        assert series[-1] < 40.0
