"""Seed robustness: the reproduced shapes must not be one lucky draw.

Every synthetic workload is a random generation; a reproduction claim that
only holds at seed 1999 would be worthless.  This bench re-runs the
headline Figure 6 comparisons at three seeds and checks that the
qualitative orderings - the actual content of the reproduction - hold for
each seed, reporting the spread.
"""

import statistics

from repro.analysis.experiments import ExperimentResult
from repro.analysis.scheduler import RunSpec, run_batch
from repro.analysis.tables import render_table

SEEDS = (7, 1999, 424242)
CACHE = 512
POLICIES = ("no-prefetch", "next-limit", "tree")


def test_seed_robustness(benchmark, ctx, record):
    refs = min(ctx.num_references, 30_000)

    def sweep():
        specs = [
            RunSpec(
                trace_name=trace,
                policy_name=policy,
                cache_size=CACHE,
                num_references=refs,
                seed=seed,
            )
            for trace in ("cello", "snake", "cad", "sitar")
            for policy in POLICIES
            for seed in SEEDS
        ]
        results = run_batch(specs)
        table = {}
        for spec, stats in zip(specs, results):
            table[(spec.trace_name, spec.policy_name, spec.seed)] = stats
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    data = {}
    for trace in ("cello", "snake", "cad", "sitar"):
        for policy in POLICIES:
            misses = [
                table[(trace, policy, seed)].miss_rate for seed in SEEDS
            ]
            rows.append([
                trace, policy,
                round(statistics.mean(misses), 2),
                round(statistics.pstdev(misses), 2),
                round(min(misses), 2),
                round(max(misses), 2),
            ])
            data[f"{trace}/{policy}"] = misses
    record(ExperimentResult(
        exp_id="seed_robustness",
        title="Headline comparisons across workload seeds",
        paper_expectation=(
            "the reproduced orderings (tree helps CAD, next-limit helps "
            "sitar/cello/snake, next-limit useless on CAD) must hold at "
            "every seed, not just the default"
        ),
        text=render_table(
            ["trace", "policy", "mean_miss", "stdev", "min", "max"],
            rows,
            title=f"Seed robustness over seeds {SEEDS} (cache {CACHE})",
        ),
        data=data,
    ))

    for seed in SEEDS:
        base_cad = table[("cad", "no-prefetch", seed)].miss_rate
        # CAD: next-limit is useless, tree helps - at every seed.
        assert abs(table[("cad", "next-limit", seed)].miss_rate - base_cad) < 6.0
        assert table[("cad", "tree", seed)].miss_rate < base_cad - 3.0
        # sitar: next-limit cuts misses by more than half - at every seed.
        base_sitar = table[("sitar", "no-prefetch", seed)].miss_rate
        assert table[("sitar", "next-limit", seed)].miss_rate < base_sitar * 0.5
        # cello/snake: next-limit clearly helps - at every seed.
        for trace in ("cello", "snake"):
            base = table[(trace, "no-prefetch", seed)].miss_rate
            assert table[(trace, "next-limit", seed)].miss_rate < base * 0.85
