"""Sensitivity study: the 1999 cost-benefit balance on modern storage.

The paper's constants describe a 1999 disk (T_disk = 15 ms against
T_cpu = 50 ms of compute).  The cost-benefit framework itself is
parametric, so we can ask how the *balance* moves as storage gets faster:

* 1999 disk:            T_disk = 15 ms    (the paper)
* early SSD:            T_disk = 1 ms
* modern NVMe:          T_disk = 0.1 ms   (T_driver now dominates!)

Expected shape: the prefetch horizon stays >= 1 and prediction still
converts misses to hits, but the *time* saved per converted miss collapses
with T_disk; once T_disk is comparable to T_driver, the depth-1
profitability floor p* = T_driver / (dT_pf(1) + T_driver) climbs toward 1
and the scheme correctly throttles itself - fewer prefetches, because each
is barely worth its own issue cost.  The cost-benefit analysis adapts with
no retuning, which is exactly the paper's argument for it.
"""

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table
from repro.core import costbenefit
from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator

DISKS = (
    ("hdd-1999", 15.0),
    ("ssd", 1.0),
    ("nvme", 0.1),
)
CACHE = 1024


def test_modern_hardware_sensitivity(benchmark, ctx, record):
    trace = ctx.trace("cad").as_list()

    def sweep():
        rows = []
        for label, t_disk in DISKS:
            params = SystemParams(
                t_hit=PAPER_PARAMS.t_hit,
                t_driver=PAPER_PARAMS.t_driver,
                t_disk=t_disk,
                t_cpu=PAPER_PARAMS.t_cpu,
            )
            base = Simulator(params, make_policy("no-prefetch"), CACHE)
            base_stats = base.run(trace)
            sim = Simulator(params, make_policy("tree"), CACHE)
            st = sim.run(trace)
            floor = costbenefit.min_profitable_probability(params, 1.0)
            time_saved = 100.0 * (
                base_stats.elapsed_time - st.elapsed_time
            ) / base_stats.elapsed_time
            rows.append([
                label, t_disk,
                round(floor, 3),
                round(st.prefetches_per_period, 3),
                round(base_stats.miss_rate, 2),
                round(st.miss_rate, 2),
                round(time_saved, 2),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(ExperimentResult(
        exp_id="modern_hardware",
        title="Cost-benefit balance vs storage speed",
        paper_expectation=(
            "parametric framework: as T_disk shrinks toward T_driver the "
            "profitability floor p* rises and the scheme throttles itself "
            "without retuning; time savings shrink with the latency gap"
        ),
        text=render_table(
            ["storage", "t_disk_ms", "p*_floor", "s", "base_miss",
             "tree_miss", "time_saved_%"],
            rows,
            title=f"Storage-speed sensitivity (CAD, cache {CACHE})",
            decimals=3,
        ),
        data={"rows": rows},
    ))
    floors = [r[2] for r in rows]
    assert floors == sorted(floors)  # floor rises as the disk gets faster
    prefetch_rates = [r[3] for r in rows]
    assert prefetch_rates[-1] <= prefetch_rates[0] + 1e-9  # self-throttling
    savings = [r[6] for r in rows]
    assert savings[0] > savings[-1]  # less time to save on fast storage
