"""Fleet scale-out: replay throughput through the gateway vs workers.

One advisory server is one Python process pinned to one core, so the
fleet's pitch is horizontal: the gateway proxies protocol v3 to N
``repro serve`` subprocesses placed by consistent hash.  This bench
replays the same CAD trace four ways — straight at a bare server, and
through a gateway over 1, 2, and 4 workers — and records aggregate
advice/sec plus client-side latency.

Two shapes are under test: the gateway's proxy hop costs latency at one
worker (that overhead is the price of the failover machinery), and
aggregate throughput recovers as workers absorb the sessions in
parallel.  Advice must stay byte-identical in every configuration —
every client ends at the same deterministic miss rate.

``REPRO_BENCH_FLEET_REFS`` (default 2000) sets references per client;
8 clients x 4 configurations x 2000 refs ~ 64k OBSERVE round trips.
"""

import asyncio
import os

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_series
from repro.cluster import AdvisoryGateway, WorkerSupervisor
from repro.service.replay import replay, replay_async
from repro.service.server import BackgroundServer
from repro.tenancy.memory import rss_bytes
from repro.traces.synthetic import make_trace

WORKER_COUNTS = (1, 2, 4)
CLIENTS = 8


async def _replay_through_fleet(blocks, workers):
    supervisor = WorkerSupervisor(workers, probe_interval_s=5.0)
    async with supervisor:
        gateway = AdvisoryGateway(supervisor)
        await gateway.start(port=0)
        try:
            report = await replay_async(
                blocks, port=gateway.port, clients=CLIENTS,
                policy="tree", cache_size=1024,
            )
            # Probe each worker subprocess while it is still serving: the
            # per-worker resident set is the capacity number operators
            # size fleets with (advice/sec tells only half the story).
            rss = {
                worker.worker_id: rss_bytes(worker.proc.pid)
                for worker in supervisor.workers.values()
                if worker.proc is not None
            }
            return report, rss
        finally:
            await gateway.aclose()


def _run_battery():
    refs = int(os.environ.get("REPRO_BENCH_FLEET_REFS", "2000"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1999"))
    blocks = make_trace("cad", num_references=refs, seed=seed).as_list()
    reports = {}
    worker_rss = {}
    with BackgroundServer() as server:
        reports["bare"] = replay(
            blocks, port=server.port, clients=CLIENTS,
            policy="tree", cache_size=1024,
        )
        # The bare server shares this process, so "its" RSS is ours.
        worker_rss["bare"] = {"self": rss_bytes()}
    for workers in WORKER_COUNTS:
        reports[workers], worker_rss[workers] = asyncio.run(
            _replay_through_fleet(blocks, workers)
        )
    return refs, reports, worker_rss


def test_fleet_scaling(benchmark, record):
    refs, reports, worker_rss = benchmark.pedantic(
        _run_battery, rounds=1, iterations=1
    )

    configs = ["bare"] + list(WORKER_COUNTS)
    series = {
        "advice_per_sec": [
            round(reports[c].advice_per_second, 1) for c in configs
        ],
        "p50_ms": [reports[c].latency["p50_ms"] for c in configs],
        "p95_ms": [reports[c].latency["p95_ms"] for c in configs],
        "p99_ms": [reports[c].latency["p99_ms"] for c in configs],
        "max_worker_rss_mb": [
            round(max(worker_rss[c].values()) / (1 << 20), 1)
            if worker_rss.get(c) else 0.0
            for c in configs
        ],
    }
    result = ExperimentResult(
        exp_id="fleet_scaling",
        title="fleet gateway: replay throughput vs worker count",
        paper_expectation=(
            "beyond the paper: sharded serving tier; gateway hop costs "
            "latency, worker parallelism recovers aggregate advice/sec"
        ),
        text=render_series(
            "workers", configs, series,
            title=(
                f"replay of cad ({refs} refs/client, {CLIENTS} clients, "
                "tree, 1024 blocks); bare = no gateway"
            ),
        ),
        data={
            "refs_per_client": refs,
            "clients": CLIENTS,
            "reports": {
                str(c): reports[c].as_dict() for c in configs
            },
            "worker_rss_bytes": {
                str(c): dict(worker_rss.get(c, {})) for c in configs
            },
        },
    )
    record(result)

    bare_miss_rates = set(reports["bare"].per_client_miss_rate)
    assert len(bare_miss_rates) == 1  # deterministic baseline
    for config in configs:
        report = reports[config]
        assert report.requests == CLIENTS * refs
        assert report.advice_per_second > 0
        # routing through the fleet must not perturb a single decision
        assert set(report.per_client_miss_rate) == bare_miss_rates

    # scale-out sanity: 4 workers should beat 1 worker through the same
    # gateway (loose: real speedup depends on core count of the CI box)
    assert reports[4].advice_per_second > 0.8 * reports[1].advice_per_second
